// Update-engine tests: stage-boundary fault injection and the pipelined
// hammer.
//
// The crash model uses the SyncPoints seam (util/sync_point.h): the
// inline (synchronous) engine visits every stage boundary in one fixed
// total order, so "crash at point P of epoch E" enumerates every
// reachable on-disk state deterministically. At the chosen firing the
// test hook copies the journal file and checkpoint directory aside — a
// crash-consistent image: bytes still sitting in stdio buffers or
// unfinished groups are genuinely absent from the copy, exactly as a
// SIGKILL would leave them — then kills the engine. Recovery runs
// against the image and must land on the reference state of whatever
// epoch the image's durable frontier reaches; resuming the stream from
// there must reproduce the uninterrupted run byte-for-byte, journal
// included. The pipelined mode is covered by an end-to-end equivalence
// smoke here (the full matrix lives in test_engine_equivalence.cpp), a
// TSan hammer (readers + pipelined updater + checkpointer), and the
// process-level SIGKILL job in CI.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "engine/update_engine.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "serve/view_service.h"
#include "util/sync_point.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

namespace fs = std::filesystem;
using engine::UpdateEngine;
using persist::Journal;
using persist::RecoveryOptions;
using persist::RecoveryReport;

Config engine_config() {
  Config cfg;
  cfg.max_rank = 2;
  cfg.seed = 4242;
  cfg.initial_capacity = 1 << 14;
  return cfg;
}

std::string save_str(const DynamicMatcher& m) {
  std::ostringstream out;
  EXPECT_TRUE(m.save(out));
  return std::move(out).str();
}

std::string file_str(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

// Clears the global sync-point hook on scope exit, so a failing ASSERT in
// one test cannot leak an armed hook into the next.
struct HookGuard {
  ~HookGuard() { SyncPoints::clear(); }
};

class EngineTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdmm_test_engine." + std::to_string(::getpid()) + "." +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    SyncPoints::clear();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// Deterministic batch stream + per-epoch reference snapshots
// (reference[e] = state after epoch e; reference[0] = empty matcher).
struct RefRun {
  std::vector<Batch> batches;
  std::vector<std::string> reference;
};

RefRun drive_reference(const Config& cfg, ThreadPool& pool, size_t batches) {
  RefRun run;
  ChurnStream::Options so;
  so.n = 180;
  so.target_edges = 400;
  so.zipf_s = 0.6;
  so.seed = 99;
  ChurnStream stream(so);
  DynamicMatcher m(cfg, pool);
  run.reference.push_back(save_str(m));
  for (size_t i = 0; i < batches; ++i) {
    run.batches.push_back(stream.next(24));
    const Batch& b = run.batches.back();
    m.update_by_endpoints(b.deletions, b.insertions);
    run.reference.push_back(save_str(m));
  }
  return run;
}

// The journal bytes an uninterrupted, fully committed run produces.
std::string reference_journal(const std::string& wal,
                              const std::vector<Batch>& batches) {
  std::string err;
  auto j = Journal::open(wal, {}, &err);
  EXPECT_NE(j, nullptr) << err;
  // Test setup runs single-threaded here; this thread is the appender.
  j->appender_role().assert_held();
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_TRUE(j->append(i + 1, batches[i], &err)) << err;
  }
  j.reset();
  return file_str(wal);
}

// Copies the on-disk persistence state (journal + every "ck*" file,
// INCLUDING .tmp strays) into `img` — the crash-consistent image the
// recovery half of a fault test runs against.
void capture_image(const fs::path& live, const fs::path& img) {
  fs::create_directories(img);
  for (const auto& ent : fs::directory_iterator(live)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("wal", 0) == 0 || name.rfind("ck", 0) == 0) {
      fs::copy_file(ent.path(), img / name,
                    fs::copy_options::overwrite_existing);
    }
  }
}

// ---------------------------------------------------------------------------
// Inline engine: behavioural equivalence with the plain update loop
// ---------------------------------------------------------------------------

TEST_F(EngineTest, InlineEngineMatchesDirectUpdates) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 12);

  DynamicMatcher m(cfg, pool);
  // Single-threaded test driver: this thread owns all roles.
  m.updater_role().assert_held();
  MatchViewService::Options so;
  so.install_hook = false;
  MatchViewService service(m, so);
  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;

  UpdateEngine::Options eo;
  eo.group_commit = 3;
  eo.checkpoint_every = 4;
  eo.checkpoint_prefix = path("ck");
  {
    UpdateEngine eng(m, &service, j.get(), eo);
    for (const Batch& b : ref.batches) ASSERT_TRUE(eng.submit(b));
    ASSERT_TRUE(eng.drain());
    EXPECT_EQ(eng.submitted_epoch(), 12u);
    EXPECT_EQ(eng.applied_epoch(), 12u);
    EXPECT_EQ(eng.durable_epoch(), 12u);
    EXPECT_EQ(eng.retired_epoch(), 12u);
    ASSERT_TRUE(eng.stop());
  }
  EXPECT_EQ(save_str(m), ref.reference[12]);
  EXPECT_EQ(service.published_epoch(), 12u);
  // Group commit changes WHEN fsyncs happen, never the bytes.
  j.reset();
  EXPECT_EQ(file_str(path("wal.log")),
            reference_journal(path("ref_wal.log"), ref.batches));
  // Checkpoints landed at epochs 4, 8, 12; keep=3 retains all three.
  EXPECT_EQ(persist::list_checkpoints(path("ck")).size(), 3u);
}

// ---------------------------------------------------------------------------
// Crash at every sync point of every epoch, recover, resume byte-identically
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CrashAtEverySyncPointRecoversAndResumesByteIdentical) {
  constexpr size_t kBatches = 10;
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, kBatches);
  const std::string ref_wal = reference_journal(path("refwal"), ref.batches);

  const char* const kPoints[] = {
      kEnginePreAppend,  kEnginePostAppend,     kJournalPreFsync,
      kEnginePostCommit, kEnginePreSettle,      kEnginePostSettle,
      kEnginePreCheckpoint, kEnginePrePublish,  kEnginePostPublish,
      kCheckpointPreRename,
  };

  size_t cases_run = 0;
  for (const char* point : kPoints) {
    for (uint64_t target = 1; target <= kBatches; ++target) {
      SCOPED_TRACE(std::string(point) + " @ epoch " +
                   std::to_string(target));
      const fs::path live = dir_ / (std::string("live_") + point + "_" +
                                    std::to_string(target));
      const fs::path img = dir_ / (std::string("img_") + point + "_" +
                                   std::to_string(target));
      fs::create_directories(live);

      UpdateEngine::Options eo;
      eo.group_commit = 2;  // leaves appended-but-uncommitted crash states
      eo.checkpoint_every = 3;
      eo.checkpoint_keep = 2;
      eo.checkpoint_prefix = (live / "ck").string();

      uint64_t durable_at_crash = 0;
      bool fired = false;
      bool completed = false;
      {
        DynamicMatcher m(cfg, pool);
        m.updater_role().assert_held();
        MatchViewService::Options so;
        so.install_hook = false;
        MatchViewService service(m, so);
        std::string err;
        auto j = Journal::open((live / "wal.log").string(), {}, &err);
        ASSERT_NE(j, nullptr) << err;
        UpdateEngine eng(m, &service, j.get(), eo);

        HookGuard guard;
        SyncPoints::install([&](const char* p, uint64_t arg) {
          if (!fired && std::strcmp(p, point) == 0 && arg == target) {
            fired = true;
            capture_image(live, img);
            return SyncPoints::kCrash;
          }
          return SyncPoints::kProceed;
        });

        completed = true;
        for (const Batch& b : ref.batches) {
          if (!eng.submit(b)) {
            completed = false;
            break;
          }
        }
        if (completed) completed = eng.drain();
        durable_at_crash = eng.durable_epoch();
        SyncPoints::clear();
      }

      if (!fired) {
        // This point never reaches this epoch under the configured
        // cadence (commit groups of 2, checkpoints every 3) — the run
        // must then have completed untouched.
        EXPECT_TRUE(completed);
        fs::remove_all(live);
        continue;
      }
      ++cases_run;
      EXPECT_FALSE(completed);

      // Recover from the crash image. The durable frontier may trail the
      // crash epoch (buffered groups die with the process) but can never
      // trail the engine's own durability watermark — that is the
      // watermark's promise.
      DynamicMatcher m2(cfg, pool);
      m2.updater_role().assert_held();
      RecoveryOptions ro;
      ro.checkpoint_prefix = (img / "ck").string();
      ro.journal_path = (img / "wal.log").string();
      const RecoveryReport rep = persist::recover(m2, ro);
      ASSERT_TRUE(rep.ok) << rep.error;
      const uint64_t d = rep.final_epoch;
      EXPECT_GE(d, durable_at_crash);
      EXPECT_LE(d, target);
      ASSERT_LT(d, ref.reference.size());
      EXPECT_EQ(save_str(m2), ref.reference[d])
          << "recovered state diverges from the reference at epoch " << d;

      // Resume the same stream from the image and finish it: the final
      // state AND the journal bytes must match the uninterrupted run.
      std::string err;
      auto j2 = persist::open_journal_after_recovery(
          (img / "wal.log").string(), {}, rep, &err);
      ASSERT_NE(j2, nullptr) << err;
      MatchViewService::Options so;
      so.install_hook = false;
      MatchViewService service2(m2, so);
      UpdateEngine::Options eo2 = eo;
      eo2.checkpoint_prefix = (img / "ck").string();
      {
        UpdateEngine eng2(m2, &service2, j2.get(), eo2);
        for (uint64_t e = d; e < kBatches; ++e) {
          ASSERT_TRUE(eng2.submit(ref.batches[e])) << eng2.error();
        }
        ASSERT_TRUE(eng2.drain()) << eng2.error();
        ASSERT_TRUE(eng2.stop());
      }
      EXPECT_EQ(save_str(m2), ref.reference[kBatches]);
      j2.reset();
      EXPECT_EQ(file_str((img / "wal.log").string()), ref_wal)
          << "resumed journal is not byte-identical";

      fs::remove_all(live);
      fs::remove_all(img);
    }
  }
  // The matrix must have actually exercised a healthy spread of crash
  // states (every unconditional point fires at every epoch).
  EXPECT_GE(cases_run, 60u);
}

// ---------------------------------------------------------------------------
// Injected fsync failure: surfaces on the durability watermark, never
// silent success
// ---------------------------------------------------------------------------

TEST_F(EngineTest, FsyncFailureSurfacesOnDurabilityWatermark) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 6);

  DynamicMatcher m(cfg, pool);
  m.updater_role().assert_held();
  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;

  HookGuard guard;
  SyncPoints::install([&](const char* p, uint64_t arg) {
    if (std::strcmp(p, kJournalPreFsync) == 0 && arg == 4) {
      return SyncPoints::kFail;
    }
    return SyncPoints::kProceed;
  });

  UpdateEngine::Options eo;  // group_commit = 1: commit per batch
  UpdateEngine eng(m, nullptr, j.get(), eo);
  size_t accepted = 0;
  for (const Batch& b : ref.batches) {
    if (!eng.submit(b)) break;
    ++accepted;
  }
  // Epochs 1..3 committed; the injected failure killed epoch 4's commit.
  EXPECT_EQ(accepted, 3u);
  EXPECT_TRUE(eng.failed());
  EXPECT_NE(eng.error().find("fsync"), std::string::npos) << eng.error();
  EXPECT_EQ(eng.durable_epoch(), 3u);
  EXPECT_FALSE(eng.submit(ref.batches[4]));  // failed engines accept nothing
  EXPECT_FALSE(eng.drain());
  EXPECT_FALSE(eng.stop());
}

TEST_F(EngineTest, JournalCommitFailureLeavesWatermarkBehind) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 3);

  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;
  // Single-threaded test: this thread is the appender.
  j->appender_role().assert_held();

  ASSERT_TRUE(j->append_buffered(1, ref.batches[0], &err)) << err;
  ASSERT_TRUE(j->append_buffered(2, ref.batches[1], &err)) << err;
  EXPECT_EQ(j->last_epoch(), 2u);
  EXPECT_EQ(j->committed_epoch(), 0u);  // nothing durable yet

  HookGuard guard;
  SyncPoints::install([](const char* p, uint64_t) {
    return std::strcmp(p, kJournalPreFsync) == 0 ? SyncPoints::kFail
                                                 : SyncPoints::kProceed;
  });
  err.clear();
  EXPECT_FALSE(j->commit(&err));
  EXPECT_NE(err.find("fsync"), std::string::npos) << err;
  EXPECT_EQ(j->committed_epoch(), 0u);  // the watermark did not move

  SyncPoints::clear();
  ASSERT_TRUE(j->commit(&err)) << err;
  EXPECT_EQ(j->committed_epoch(), 2u);
}

// ---------------------------------------------------------------------------
// Checkpoint placement faults
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CheckpointRenameFaultsCleanUpOrLeaveRealisticStray) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 4);
  DynamicMatcher m(cfg, pool);
  for (const Batch& b : ref.batches) {
    m.update_by_endpoints(b.deletions, b.insertions);
  }

  // kFail: behaves like a failed rename — error out, tmp removed, no new
  // checkpoint visible.
  {
    HookGuard guard;
    SyncPoints::install([](const char* p, uint64_t) {
      return std::strcmp(p, kCheckpointPreRename) == 0 ? SyncPoints::kFail
                                                       : SyncPoints::kProceed;
    });
    std::string err;
    EXPECT_FALSE(persist::write_checkpoint_file(path("ck.fail"), m, &err));
    EXPECT_NE(err.find("rename"), std::string::npos) << err;
    EXPECT_FALSE(fs::exists(path("ck.fail")));
    EXPECT_FALSE(fs::exists(path("ck.fail.tmp")));
  }

  // kCrash: dies between tmp completion and rename — the stray .tmp a
  // real crash leaves. list_checkpoints must ignore it and recovery from
  // an older checkpoint must be unaffected.
  {
    std::string err;
    ASSERT_TRUE(persist::write_checkpoint_series(path("ck"), m, 2, &err))
        << err;
    HookGuard guard;
    SyncPoints::install([](const char* p, uint64_t) {
      return std::strcmp(p, kCheckpointPreRename) == 0
                 ? SyncPoints::kCrash
                 : SyncPoints::kProceed;
    });
    std::string bytes;
    ASSERT_TRUE(persist::encode_checkpoint(m, bytes, &err)) << err;
    EXPECT_FALSE(persist::write_checkpoint_bytes_file(path("ck.9"), bytes, 9,
                                                      &err));
    EXPECT_TRUE(fs::exists(path("ck.9.tmp")));
    EXPECT_FALSE(fs::exists(path("ck.9")));
    SyncPoints::clear();

    const auto cks = persist::list_checkpoints(path("ck"));
    ASSERT_EQ(cks.size(), 1u);  // the epoch-4 checkpoint; .tmp ignored
    EXPECT_EQ(cks[0].first, 4u);

    DynamicMatcher m2(cfg, pool);
    RecoveryOptions ro;
    ro.checkpoint_prefix = path("ck");
    const RecoveryReport rep = persist::recover(m2, ro);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.final_epoch, 4u);
    EXPECT_EQ(save_str(m2), ref.reference[4]);
  }
}

// ---------------------------------------------------------------------------
// Pipelined mode: equivalence smoke + watermark lag + lifecycle
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PipelinedEngineMatchesInlineByteForByte) {
  ThreadPool pool(2);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 30);

  DynamicMatcher m(cfg, pool);
  m.updater_role().assert_held();
  MatchViewService::Options so;
  so.install_hook = false;
  MatchViewService service(m, so);
  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;

  UpdateEngine::Options eo;
  eo.pipelined = true;
  eo.queue_capacity = 4;
  eo.group_commit = 4;
  eo.checkpoint_every = 10;
  eo.checkpoint_prefix = path("ck");
  {
    UpdateEngine eng(m, &service, j.get(), eo);
    for (const Batch& b : ref.batches) ASSERT_TRUE(eng.submit(b));
    ASSERT_TRUE(eng.drain()) << eng.error();
    EXPECT_EQ(eng.durable_epoch(), 30u);
    EXPECT_EQ(eng.retired_epoch(), 30u);
    ASSERT_TRUE(eng.stop()) << eng.error();
  }
  EXPECT_EQ(save_str(m), ref.reference[30]);
  EXPECT_EQ(service.published_epoch(), 30u);
  j.reset();
  EXPECT_EQ(file_str(path("wal.log")),
            reference_journal(path("refwal"), ref.batches));
}

TEST_F(EngineTest, GroupCommitWatermarkLagsThenDrainCatchesUp) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 3);

  DynamicMatcher m(cfg, pool);
  m.updater_role().assert_held();
  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;

  UpdateEngine::Options eo;
  eo.group_commit = 8;  // larger than the stream: nothing commits on its own
  UpdateEngine eng(m, nullptr, j.get(), eo);
  for (const Batch& b : ref.batches) ASSERT_TRUE(eng.submit(b));
  EXPECT_EQ(eng.applied_epoch(), 3u);
  EXPECT_EQ(eng.durable_epoch(), 0u);  // the open group is NOT durable
  ASSERT_TRUE(eng.drain());
  EXPECT_EQ(eng.durable_epoch(), 3u);  // drain forces the group commit
  ASSERT_TRUE(eng.stop());
  EXPECT_FALSE(eng.submit(ref.batches[0]));  // stopped engines accept nothing
}

TEST_F(EngineTest, PipelinedStopIsIdempotentAndRejectsLateSubmits) {
  ThreadPool pool(1);
  const Config cfg = engine_config();
  const RefRun ref = drive_reference(cfg, pool, 2);

  DynamicMatcher m(cfg, pool);
  m.updater_role().assert_held();
  UpdateEngine::Options eo;
  eo.pipelined = true;
  UpdateEngine eng(m, nullptr, nullptr, eo);
  ASSERT_TRUE(eng.submit(ref.batches[0]));
  ASSERT_TRUE(eng.stop());
  EXPECT_TRUE(eng.stop());  // idempotent
  EXPECT_FALSE(eng.submit(ref.batches[1]));
  EXPECT_EQ(eng.applied_epoch(), 1u);
  EXPECT_EQ(save_str(m), ref.reference[1]);
}

// ---------------------------------------------------------------------------
// The TSan hammer: readers + pipelined updater + group commit + checkpointer
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PipelinedHammerServesConsistentViewsUnderLoad) {
  constexpr size_t kReaders = 4;
  constexpr size_t kBatches = 260;
  constexpr size_t kBatchSize = 48;

  // Oversubscribed so matcher pool phases, the three stage threads, and
  // the readers genuinely interleave on small machines.
  ThreadPool pool(4, /*allow_oversubscribe=*/true);
  Config cfg = engine_config();
  cfg.seed = 31;
  DynamicMatcher m(cfg, pool);
  m.updater_role().assert_held();
  MatchViewService::Options so;
  so.max_readers = kReaders * 2 + 4;
  so.install_hook = false;
  MatchViewService service(m, so);
  std::string err;
  auto j = Journal::open(path("wal.log"), {}, &err);
  ASSERT_NE(j, nullptr) << err;

  ChurnStream::Options sopt;
  sopt.n = 512;
  sopt.target_edges = 1024;
  sopt.seed = 31;
  ChurnStream stream(sopt);

  std::atomic<bool> done{false};
  struct ReaderResult {
    uint64_t acquires = 0;
    uint64_t validations = 0;
    bool monotone = true;
    bool consistent = true;
    std::string error;
  };
  std::vector<ReaderResult> results(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ReaderResult& out = results[r];
      uint64_t last_epoch = 0;
      while (true) {
        // mo: acquire — pairs with the release store after the stream
        // ends; a reader that sees done also sees the final publishes.
        const bool finishing = done.load(std::memory_order_acquire);
        ViewHandle h = service.acquire();
        if (h) {
          ++out.acquires;
          if (h->epoch < last_epoch) out.monotone = false;
          if (h->epoch != last_epoch) {
            std::string verr;
            if (!h->validate(&verr)) {
              out.consistent = false;
              if (out.error.empty()) out.error = verr;
            }
            ++out.validations;
          }
          last_epoch = h->epoch;
        }
        if (finishing) break;
      }
    });
  }

  UpdateEngine::Options eo;
  eo.pipelined = true;
  eo.queue_capacity = 4;
  eo.group_commit = 4;
  eo.group_commit_us = 200;
  eo.checkpoint_every = 32;
  eo.checkpoint_keep = 2;
  eo.checkpoint_prefix = path("ck");
  eo.record_latency = true;
  {
    UpdateEngine eng(m, &service, j.get(), eo);
    for (size_t i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(eng.submit(stream.next(kBatchSize))) << eng.error();
    }
    ASSERT_TRUE(eng.drain()) << eng.error();
    EXPECT_EQ(eng.durable_epoch(), kBatches);
    EXPECT_EQ(eng.retired_epoch(), kBatches);
    ASSERT_TRUE(eng.stop()) << eng.error();
    const auto samples = eng.latency_samples();
    ASSERT_EQ(samples.size(), kBatches);
    for (const auto& s : samples) {
      EXPECT_GT(s.durable_us, 0.0) << "epoch " << s.epoch;
      EXPECT_GT(s.published_us, 0.0) << "epoch " << s.epoch;
      EXPECT_GT(s.retired_us, 0.0) << "epoch " << s.epoch;
    }
  }
  // mo: release — hands the final published state to finishing readers.
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(service.published_epoch(), kBatches);
  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(results[r].monotone) << "reader " << r;
    EXPECT_TRUE(results[r].consistent)
        << "reader " << r << ": " << results[r].error;
  }
  EXPECT_FALSE(persist::list_checkpoints(path("ck")).empty());
}

}  // namespace
}  // namespace pdmm
