// Miscellaneous edge-case and statistical tests across modules.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/matcher.h"
#include "parallel/parallel_for.h"
#include "static_mm/luby.h"
#include "util/rng.h"

namespace pdmm {
namespace {

// --- Luby randomness sanity: on a symmetric 2-edge path, each edge should
// win the matching for about half of the seeds (oblivious-adversary
// randomness actually varies with the seed).
TEST(LubyStats, SymmetricPathIsFairAcrossSeeds) {
  HyperedgeRegistry reg(2);
  const EdgeId a = reg.insert(std::vector<Vertex>{0, 1});
  const EdgeId b = reg.insert(std::vector<Vertex>{1, 2});
  ThreadPool pool(1);
  int a_wins = 0;
  const int kTrials = 400;
  for (int s = 0; s < kTrials; ++s) {
    const auto res = static_maximal_matching(
        pool, reg, std::vector<EdgeId>{a, b}, 1000 + s);
    ASSERT_EQ(res.matched.size(), 1u);
    a_wins += res.matched[0] == a;
  }
  // Binomial(400, ~1/2): 5-sigma band is +-50.
  EXPECT_NEAR(a_wins, kTrials / 2, 50);
}

// Hub fairness: among 8 symmetric star edges, the winner should spread
// across seeds rather than fixating on one id.
TEST(LubyStats, StarWinnerSpreadsAcrossSeeds) {
  HyperedgeRegistry reg(2);
  std::vector<EdgeId> ids;
  for (Vertex i = 1; i <= 8; ++i)
    ids.push_back(reg.insert(std::vector<Vertex>{0, i}));
  ThreadPool pool(1);
  std::vector<int> wins(reg.id_bound(), 0);
  for (int s = 0; s < 400; ++s) {
    const auto res = static_maximal_matching(pool, reg, ids, 5000 + s);
    ASSERT_EQ(res.matched.size(), 1u);
    wins[res.matched[0]]++;
  }
  for (EdgeId e : ids) {
    EXPECT_GT(wins[e], 10) << "edge " << e << " never wins";
    EXPECT_LT(wins[e], 150) << "edge " << e << " wins far too often";
  }
}

// --- ThreadPool shapes ---
TEST(PoolShapes, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> c{0};
  parallel_for(pool, 3, [&](size_t) { c.fetch_add(1); }, 1);
  EXPECT_EQ(c.load(), 3);
}

TEST(PoolShapes, GrainLargerThanRange) {
  ThreadPool pool(4);
  std::atomic<int> c{0};
  parallel_for(pool, 100, [&](size_t) { c.fetch_add(1); }, 10000);
  EXPECT_EQ(c.load(), 100);
}

TEST(PoolShapes, ZeroWorkIsNoop) {
  ThreadPool pool(4);
  parallel_for(pool, 0, [&](size_t) { FAIL() << "must not run"; });
}

// --- whole-graph replacement batches ---
TEST(MassChurn, ReplaceEntireGraphRepeatedly) {
  ThreadPool pool(2);
  Config cfg;
  cfg.max_rank = 2;
  cfg.seed = 5;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 15;
  DynamicMatcher m(cfg, pool);
  Xoshiro256 rng(9);
  for (int round = 0; round < 8; ++round) {
    // Delete everything, insert a fresh random graph in the same batch.
    const std::vector<EdgeId> all = m.graph().all_edges();
    HyperedgeRegistry dedup(2);
    std::vector<std::vector<Vertex>> ins;
    for (int i = 0; i < 300; ++i) {
      const Vertex a = static_cast<Vertex>(rng.below(100));
      const Vertex b = static_cast<Vertex>(rng.below(100));
      if (a == b) continue;
      const std::vector<Vertex> eps{std::min(a, b), std::max(a, b)};
      if (dedup.insert(eps) == kNoEdge) continue;
      ins.push_back(eps);
    }
    m.update(all, ins);
    EXPECT_EQ(m.graph().num_edges(), ins.size());
    EXPECT_GT(m.matching_size(), 0u);
  }
}

TEST(MassChurn, DeleteAllThenEmptyBatches) {
  ThreadPool pool(1);
  Config cfg;
  cfg.max_rank = 3;
  cfg.seed = 7;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 12;
  DynamicMatcher m(cfg, pool);
  std::vector<std::vector<Vertex>> ins;
  for (Vertex i = 0; i < 60; i += 3)
    ins.push_back({i, static_cast<Vertex>(i + 1), static_cast<Vertex>(i + 2)});
  m.insert_batch(ins);
  m.delete_batch(m.graph().all_edges());
  EXPECT_EQ(m.graph().num_edges(), 0u);
  EXPECT_EQ(m.matching_size(), 0u);
  for (int i = 0; i < 3; ++i) m.update({}, {});
  EXPECT_EQ(m.cost().work, m.cost().work);  // still alive and consistent
}

// --- vertex cover under churn ---
TEST(VertexCover, AlwaysCoversAllEdges) {
  ThreadPool pool(1);
  Config cfg;
  cfg.max_rank = 3;
  cfg.seed = 3;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 14;
  DynamicMatcher m(cfg, pool);
  Xoshiro256 rng(17);
  HyperedgeRegistry dedup(3);
  std::vector<std::vector<Vertex>> ins;
  for (int i = 0; i < 200; ++i) {
    Vertex a = static_cast<Vertex>(rng.below(70));
    Vertex b = static_cast<Vertex>(rng.below(70));
    Vertex c = static_cast<Vertex>(rng.below(70));
    if (a == b || b == c || a == c) continue;
    std::vector<Vertex> eps{a, b, c};
    std::sort(eps.begin(), eps.end());
    if (dedup.insert(eps) == kNoEdge) continue;
    ins.push_back(eps);
  }
  m.insert_batch(ins);
  for (int round = 0; round < 6; ++round) {
    std::vector<EdgeId> dels;
    for (EdgeId e : m.graph().all_edges())
      if (rng.uniform() < 0.3) dels.push_back(e);
    m.delete_batch(dels);

    std::vector<uint8_t> in_cover(m.graph().vertex_bound(), 0);
    for (Vertex v : m.vertex_cover()) in_cover[v] = 1;
    for (EdgeId e : m.graph().all_edges()) {
      bool covered = false;
      for (Vertex u : m.graph().endpoints(e)) covered |= in_cover[u];
      EXPECT_TRUE(covered);
    }
  }
}

// --- registry shrink path ---
TEST(RegistryShrink, MassEraseTriggersDictShrink) {
  HyperedgeRegistry reg(2);
  std::vector<EdgeId> ids;
  for (Vertex i = 0; i < 20000; ++i)
    ids.push_back(reg.insert(
        std::vector<Vertex>{2 * i, 2 * i + 1}));
  for (EdgeId e : ids) reg.erase(e);
  EXPECT_EQ(reg.num_edges(), 0u);
  // Registry still functional after the churn.
  const EdgeId e = reg.insert(std::vector<Vertex>{1, 2});
  EXPECT_NE(e, kNoEdge);
  EXPECT_EQ(reg.find(std::vector<Vertex>{2, 1}), e);
}

}  // namespace
}  // namespace pdmm
