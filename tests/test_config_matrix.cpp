// Configuration-matrix fuzzing: every supported combination of the
// behavioural knobs drives a churn stream with the invariant oracle active.
// This is the compatibility net that keeps rare-path interactions (lazy
// settling x fallback x hypergraphs x threads x rebuilds) honest.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "param_name.h"
#include "core/matcher.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

struct MatrixParams {
  bool eager;
  uint32_t iter_factor;
  uint32_t max_repeats;   // 0 = always fallback
  uint32_t max_eager;     // 0 = always cap
  bool auto_rebuild;
  uint32_t rank;
  unsigned threads;
  uint64_t seed;
};

std::string matrix_name(const testing::TestParamInfo<MatrixParams>& info) {
  const auto& p = info.param;
  return testing_util::name_cat(
      p.eager ? "eager" : "lazy", "_if", p.iter_factor, "_mr", p.max_repeats,
      "_me", p.max_eager, p.auto_rebuild ? "_rb" : "_norb", "_r", p.rank,
      "_t", p.threads, "_s", p.seed);
}

class ConfigMatrix : public testing::TestWithParam<MatrixParams> {};

TEST_P(ConfigMatrix, ChurnStaysSound) {
  const auto p = GetParam();
  ThreadPool pool(p.threads, /*allow_oversubscribe=*/true);
  Config cfg;
  cfg.max_rank = p.rank;
  cfg.seed = p.seed;
  cfg.check_invariants = true;
  cfg.settle_after_insertions = p.eager;
  cfg.subsettle_iter_factor = p.iter_factor;
  cfg.max_settle_repeats = p.max_repeats;
  cfg.max_eager_sweeps = p.max_eager;
  cfg.auto_rebuild = p.auto_rebuild;
  cfg.initial_capacity = p.auto_rebuild ? 200 : (1 << 15);
  DynamicMatcher m(cfg, pool);

  ChurnStream::Options so;
  so.n = 96;
  so.rank = p.rank;
  so.target_edges = 220;
  so.zipf_s = 0.5;
  so.seed = p.seed + 1000;
  ChurnStream stream(so);

  for (int i = 0; i < 35; ++i) {
    const Batch b = stream.next(24);
    std::vector<EdgeId> dels;
    for (const auto& eps : b.deletions) {
      const EdgeId e = m.find_edge(eps);
      ASSERT_NE(e, kNoEdge);
      dels.push_back(e);
    }
    m.update(dels, b.insertions);
    ASSERT_EQ(m.graph().num_edges(), stream.live().size());
  }
  if (p.auto_rebuild) {
    EXPECT_GT(m.stats().rebuilds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ConfigMatrix,
    testing::Values(
        // default-ish configurations across ranks and threads
        MatrixParams{true, 2, 64, 8, false, 2, 1, 1},
        MatrixParams{true, 2, 64, 8, false, 2, 4, 2},
        MatrixParams{false, 2, 64, 8, false, 2, 1, 3},
        MatrixParams{false, 2, 64, 8, false, 3, 2, 4},
        MatrixParams{true, 2, 64, 8, false, 5, 1, 5},
        // stressed knobs
        MatrixParams{true, 1, 0, 8, false, 2, 1, 6},   // always fallback
        MatrixParams{false, 1, 0, 8, false, 3, 1, 7},
        MatrixParams{true, 2, 64, 0, false, 2, 1, 8},  // always eager cap
        MatrixParams{true, 1, 64, 1, false, 2, 2, 9},
        MatrixParams{true, 4, 64, 8, false, 2, 1, 10},
        // rebuild interactions
        MatrixParams{true, 2, 64, 8, true, 2, 1, 11},
        MatrixParams{false, 2, 64, 8, true, 2, 1, 12},
        MatrixParams{true, 2, 0, 8, true, 3, 2, 13},
        MatrixParams{false, 1, 64, 0, true, 2, 1, 14},
        MatrixParams{true, 2, 64, 8, true, 4, 4, 15},
        MatrixParams{false, 2, 0, 0, true, 2, 1, 16}),
    matrix_name);

}  // namespace
}  // namespace pdmm
