// Corpus: tsa-rationale — every thread-safety-analysis opt-out must carry
// a written happens-before argument within the 10 lines above it. The bad
// case comes first so the good case's rationale stays out of its window.
#define PDMM_NO_THREAD_SAFETY_ANALYSIS

void bad_exempt() PDMM_NO_THREAD_SAFETY_ANALYSIS {}  // expect-lint: tsa-rationale

// tsa: reads only happen behind a successful CAS whose acquire pairs with
// the coordinator's release store of the descriptor.
void ok_exempt() PDMM_NO_THREAD_SAFETY_ANALYSIS {}
