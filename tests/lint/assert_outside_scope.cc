// lint-test-path: src/core/corpus.cpp
// Corpus: assert-recoverable only applies to persist/ and workload/trace*;
// core invariants may abort. No findings expected.
#define PDMM_ASSERT(x) ((void)(x))

void check(int x) { PDMM_ASSERT(x >= 0); }
