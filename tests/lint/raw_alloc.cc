// Corpus: raw-alloc — naked new/malloc outside the container/arena
// allowlist.
#include <cstdlib>

struct Node { int v; };

Node* bad_new() {
  return new Node{1};  // expect-lint: raw-alloc
}

void* bad_malloc(unsigned n) {
  return malloc(n);  // expect-lint: raw-alloc
}

void* bad_placement(void* p) {
  return ::new (p) Node{2};  // expect-lint: raw-alloc
}

// Identifiers containing "new" and comment/string mentions must not fire.
int new_cap_counter(int new_cap) { return new_cap; }  // renew the new_cap
const char* doc() { return "allocates with new internally"; }

// lint:allow(raw-alloc) corpus exercise of the waiver path
Node* waived() { return new Node{3}; }
