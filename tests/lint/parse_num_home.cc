// lint-test-path: src/util/parse_num.h
// Corpus: the strict-parse helpers are the one home where the raw
// conversions are allowed; no findings expected in this file.
#include <cstdlib>

unsigned long long helper(const char* s, char** end) {
  return std::strtoull(s, end, 10);
}
