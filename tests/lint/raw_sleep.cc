// lint-test-path: src/replicate/corpus.cpp
// Corpus: raw-sleep — naked blind-wait primitives outside util/backoff.h.
#include <chrono>
#include <thread>

void retry_loop_bad() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect-lint: raw-sleep
  usleep(100);  // expect-lint: raw-sleep
  struct timespec ts{0, 100};
  nanosleep(&ts, nullptr);  // expect-lint: raw-sleep
}

void deadline_bad() {
  auto t = std::chrono::steady_clock::now();
  std::this_thread::sleep_until(t);  // expect-lint: raw-sleep
}

void paced_ok() {
  // lint:allow(raw-sleep) fixed pacing between probes, not a retry loop
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void commented_ok() {
  // std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const char* s = "sleep_for(";
  (void)s;
}
