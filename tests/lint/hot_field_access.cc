// lint-test-path: src/core/corpus.cpp
// Corpus: hot-field-access — direct indexing of the SoA hot-scalar lanes
// outside core/vertex_soa.h must go through the VertexHotSoA accessors.
#include <cstdint>
#include <vector>

struct FakeHot {
  std::vector<int32_t> vlevel_;
  std::vector<uint32_t> vmatched_;
  std::vector<uint64_t> vsmask_;
};

int32_t bad_reads(const FakeHot& h, uint32_t v) {
  int32_t l = h.vlevel_[v];  // expect-lint: hot-field-access
  l += static_cast<int32_t>(h.vmatched_[v]);  // expect-lint: hot-field-access
  return l;
}

void bad_writes(FakeHot& h, uint32_t v) {
  h.vsmask_[v] = 0;  // expect-lint: hot-field-access
  h.vlevel_.resize(8);  // expect-lint: hot-field-access
}

void waived_ok(FakeHot& h) {
  // lint:allow(hot-field-access) corpus exercise of the waiver path
  h.vsmask_[0] = 1;
}

void commented_ok() {
  // h.vlevel_[v] stays a comment, and a lookalike name is not a lane:
  std::vector<int32_t> level_;
  level_.resize(1);
  (void)level_[0];
}
