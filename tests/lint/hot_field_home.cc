// lint-test-path: src/core/vertex_soa.h
// Corpus: vertex_soa.h is the one home where the SoA lanes are indexed
// directly; no findings expected in this file.
#include <cstdint>
#include <vector>

class VertexHotSoAMock {
 public:
  int32_t level(uint32_t v) const { return vlevel_[v]; }
  void set_s_mask(uint32_t v, uint64_t m) { vsmask_[v] = m; }

 private:
  std::vector<int32_t> vlevel_;
  std::vector<uint32_t> vmatched_;
  std::vector<uint64_t> vsmask_;
};
