// Corpus: a representative clean file — strict parsing via the helpers,
// justified memory orders, container use only. Zero findings expected.
#include <atomic>
#include <memory>
#include <string>
#include <vector>

std::atomic<bool> ready{false};

void publish() {
  // mo: release — pairs with consume()'s acquire load
  ready.store(true, std::memory_order_release);
}

bool consume() {
  // mo: acquire — pairs with publish()'s release store
  return ready.load(std::memory_order_acquire);
}

std::vector<int> build(unsigned n) {
  std::vector<int> v(n, 0);
  auto p = std::make_unique<int>(7);
  v.push_back(*p);
  return v;
}
