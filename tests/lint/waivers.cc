// Corpus: waiver hygiene — a reason is mandatory and the rule name must
// exist. A bad waiver both fails hygiene and fails to suppress.
#include <cstdlib>

// lint:allow(naked-parse)  expect-lint: waiver-reason
int no_reason(const char* s) { return atoi(s); }

// lint:allow(not-a-rule) typo'd rule names must be caught  expect-lint: waiver-unknown
int unknown_rule(const char* s) {
  return atoi(s);  // expect-lint: naked-parse
}

// lint:allow(naked-parse) reason continues on the next comment line, which
// counts as the reason text for multi-line waiver comments.
int long_reason(const char* s) { return atoi(s); }
