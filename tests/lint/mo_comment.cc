// Corpus: mo-comment — every std::memory_order argument needs a `// mo:`
// comment on the same line or within the 6 preceding lines. Bad cases come
// first so the good cases' comments stay out of their lookback windows.
#include <atomic>

std::atomic<int> g{0};

int bad_naked() {
  return g.load(std::memory_order_acquire);  // expect-lint: mo-comment
}

int bad_too_far() {
  // mo: this justification is too far from its use to count
  int a = 0;
  int b = 1;
  int c = 2;
  int d = 3;
  int e = 4;
  int f = 5;
  (void)(a + b + c + d + e + f);
  return g.load(std::memory_order_seq_cst);  // expect-lint: mo-comment
}

int ok_same_line() {
  return g.load(std::memory_order_acquire);  // mo: pairs with set()'s release
}

int ok_above() {
  // mo: relaxed — diagnostic counter, no ordering needed
  return g.load(std::memory_order_relaxed);
}

void ok_multiline_call() {
  // mo: release — publishes the flag; reader acquires
  g.store(1,
          std::memory_order_release);
}
