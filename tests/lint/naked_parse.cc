// Corpus: naked-parse — C string->number conversions must be flagged
// anywhere outside src/util/parse_num.h, including the std:: spellings,
// but never inside comments or string literals.
#include <cstdlib>
#include <string>

int bad_c(const char* s) {
  return static_cast<int>(strtoull(s, nullptr, 10));  // expect-lint: naked-parse
}

int bad_std(const std::string& s) {
  return std::stoi(s);  // expect-lint: naked-parse
}

double bad_d(const char* s) {
  return std::strtod(s, nullptr);  // expect-lint: naked-parse
}

// lint:allow(naked-parse) exercising the waiver path in the corpus
long waived(const char* s) { return std::atol(s); }

// A strtoull mention in a comment is not a call.
const char* doc() { return "call std::stoi(s) elsewhere"; }
