// lint-test-path: src/persist/corpus.cpp
// Corpus: assert-recoverable — persistence code parses external bytes, so
// PDMM_ASSERT there must be flagged; error returns are required instead.
// (The macro definitions themselves live in util/assert.h; a #define is
// not a use and must not fire.)
#define PDMM_ASSERT(x) ((void)(x))
#define PDMM_ASSERT_MSG(x, m) ((void)(x))
#define PDMM_DASSERT(x) ((void)(x))

bool parse_header(const char* p, bool* out) {
  PDMM_ASSERT(p != nullptr);  // expect-lint: assert-recoverable
  PDMM_ASSERT_MSG(*p == 'J', "bad magic");  // expect-lint: assert-recoverable
  // Debug-build invariants on internal state are fine: they compile away
  // in release and never fire on corrupt input, only on our own bugs.
  PDMM_DASSERT(out != nullptr);
  // lint:allow(assert-recoverable) corpus exercise of the waiver path
  PDMM_ASSERT(p[1] == 'N');
  *out = true;
  return true;
}
