// lint-test-path: src/util/indexed_set.h
// Corpus: containers on the allowlist own raw arrays by design; no
// findings expected.
unsigned* grow(unsigned n) { return new unsigned[n]; }
