// Linearized-equivalence oracle for the update engine.
//
// The determinism contract under test: per epoch, the pipelined engine's
// matcher state, BatchResult diffs, published views, and journal bytes
// are byte-identical to the synchronous (inline) engine's — across
// workload shapes, seeds, matcher thread counts, AND group-commit sizes.
// Every run of a (scenario, seed) cell records a full RunRecord; the
// first cell is canonical and every other cell must match it exactly.
//
// Capture points:
//   state + diffs  the matcher's post-batch hook, which fires at the
//                  epoch barrier on whichever thread settles (the engine
//                  leaves the hook free precisely for this oracle);
//   views          a SyncPoints hook on engine.post_publish, acquiring
//                  from the service on the publish stage thread — at that
//                  moment the current view is exactly the fired epoch;
//   journal        the file bytes after stop().
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/matcher.h"
#include "engine/update_engine.h"
#include "persist/journal.h"
#include "serve/view_service.h"
#include "util/sync_point.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace pdmm {
namespace {

namespace fs = std::filesystem;
using engine::UpdateEngine;
using persist::Journal;

std::string file_str(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

void append_ids(std::ostringstream& out, const char* tag,
                std::vector<EdgeId> ids) {
  // Diff vectors carry set semantics; order may depend on settle
  // scheduling, so canonicalize before comparing.
  std::sort(ids.begin(), ids.end());
  out << tag;
  for (EdgeId e : ids) out << ' ' << e;
  out << '\n';
}

std::string encode_diff(const DynamicMatcher::BatchResult& r) {
  std::ostringstream out;
  // inserted_ids is positional (aligned with the insertion list), so its
  // order IS part of the contract — no sorting.
  out << "ins";
  for (EdgeId e : r.inserted_ids) out << ' ' << e;
  out << '\n';
  append_ids(out, "matched", r.newly_matched);
  append_ids(out, "unmatched", r.newly_unmatched);
  out << "rebuilt " << (r.rebuilt ? 1 : 0) << '\n';
  return std::move(out).str();
}

std::string encode_view(const MatchView& v) {
  std::ostringstream out;
  out << "view " << v.epoch << ' ' << v.max_rank << '\n';
  out << "vmatch";
  for (EdgeId e : v.vmatch) out << ' ' << e;
  out << "\nvlevel";
  for (auto l : v.vlevel) out << ' ' << l;
  out << "\nmedges";
  for (EdgeId e : v.medges) out << ' ' << e;
  out << "\nmoffset";
  for (auto o : v.moffset) out << ' ' << o;
  out << "\nmendpoints";
  for (Vertex u : v.mendpoints) out << ' ' << u;
  out << '\n';
  return std::move(out).str();
}

// Everything one engine run externalizes, keyed per epoch.
struct RunRecord {
  std::vector<std::string> state;  // save() bytes after each epoch
  std::vector<std::string> diffs;  // encoded BatchResult per epoch
  std::vector<std::string> views;  // encoded published view per epoch
  std::string journal;             // full journal file bytes
};

struct Cell {
  bool pipelined = false;
  unsigned threads = 1;
  size_t group_commit = 1;
};

std::string cell_name(const Cell& c) {
  std::ostringstream out;
  out << (c.pipelined ? "pipelined" : "inline") << "/t" << c.threads
      << "/g" << c.group_commit;
  return std::move(out).str();
}

// Runs the full batch list through one engine configuration and records
// everything it externalizes. Void with out-param: gtest ASSERTs need a
// void function.
void run_cell(const Config& cfg, const std::vector<Batch>& batches,
              const Cell& cell, const fs::path& dir, RunRecord& out) {
  fs::create_directories(dir);
  const std::string wal = (dir / "wal.log").string();

  ThreadPool pool(cell.threads, /*allow_oversubscribe=*/true);
  DynamicMatcher m(cfg, pool);
  // Single-driver test setup: this thread owns the updater role until the
  // engine starts, and takes it back after the engine stops.
  m.updater_role().assert_held();
  MatchViewService::Options so;
  so.install_hook = false;
  so.publish_initial = false;
  MatchViewService service(m, so);
  std::string err;
  auto j = Journal::open(wal, {}, &err);
  ASSERT_NE(j, nullptr) << err;

  m.set_post_batch_hook([&](const DynamicMatcher::BatchResult& r) {
    // Fires at the epoch barrier on the settle thread, which owns the
    // matcher at that point — save() reads a quiescent state.
    std::ostringstream snap;
    if (m.save(snap)) out.state.push_back(std::move(snap).str());
    out.diffs.push_back(encode_diff(r));
  });
  SyncPoints::install([&](const char* p, uint64_t epoch) {
    if (std::strcmp(p, kEnginePostPublish) == 0) {
      // Publish-stage thread; the channel's current view is exactly
      // `epoch` here (the next publish happens on this same thread).
      ViewHandle h = service.acquire();
      EXPECT_TRUE(h);
      if (h) {
        EXPECT_EQ(h->epoch, epoch);
        out.views.push_back(encode_view(*h));
      }
    }
    return SyncPoints::kProceed;
  });

  UpdateEngine::Options eo;
  eo.pipelined = cell.pipelined;
  eo.queue_capacity = 3;
  eo.group_commit = cell.group_commit;
  {
    UpdateEngine eng(m, &service, j.get(), eo);
    for (const Batch& b : batches) ASSERT_TRUE(eng.submit(b)) << eng.error();
    ASSERT_TRUE(eng.drain()) << eng.error();
    EXPECT_EQ(eng.durable_epoch(), batches.size());
    ASSERT_TRUE(eng.stop()) << eng.error();
    EXPECT_FALSE(eng.failed());
  }
  SyncPoints::clear();
  m.set_post_batch_hook(nullptr);

  j.reset();
  out.journal = file_str(wal);
  ASSERT_EQ(out.state.size(), batches.size());
  ASSERT_EQ(out.diffs.size(), batches.size());
  ASSERT_EQ(out.views.size(), batches.size());
}

void expect_equal_runs(const RunRecord& canon, const RunRecord& got,
                       const std::string& canon_name,
                       const std::string& got_name) {
  ASSERT_EQ(canon.state.size(), got.state.size()) << got_name;
  for (size_t e = 0; e < canon.state.size(); ++e) {
    EXPECT_EQ(canon.state[e], got.state[e])
        << got_name << " diverges from " << canon_name
        << ": matcher state at epoch " << e + 1;
    EXPECT_EQ(canon.diffs[e], got.diffs[e])
        << got_name << " diverges from " << canon_name
        << ": BatchResult diff at epoch " << e + 1;
    EXPECT_EQ(canon.views[e], got.views[e])
        << got_name << " diverges from " << canon_name
        << ": published view at epoch " << e + 1;
  }
  EXPECT_EQ(canon.journal, got.journal)
      << got_name << " diverges from " << canon_name << ": journal bytes";
}

class EngineEquivalence : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdmm_test_engine_eq." + std::to_string(::getpid()) + "." +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    SyncPoints::clear();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Every engine mode × thread count × group-commit size must externalize
  // the canonical record for this batch stream, byte for byte.
  void check_matrix(const Config& cfg, const std::vector<Batch>& batches,
                    const std::string& scenario) {
    const unsigned kThreads[] = {1, 2, 4};
    const size_t kGroups[] = {1, 3};
    RunRecord canon;
    std::string canon_name;
    size_t cell_idx = 0;
    for (const bool pipelined : {false, true}) {
      for (const unsigned t : kThreads) {
        for (const size_t g : kGroups) {
          const Cell cell{pipelined, t, g};
          const std::string name = scenario + "/" + cell_name(cell);
          SCOPED_TRACE(name);
          RunRecord rec;
          run_cell(cfg, batches, cell,
                   dir_ / (scenario + "_" + std::to_string(cell_idx++)),
                   rec);
          if (testing::Test::HasFatalFailure()) return;
          if (canon_name.empty()) {
            canon = std::move(rec);
            canon_name = name;
          } else {
            expect_equal_runs(canon, rec, canon_name, name);
          }
        }
      }
    }
  }

  fs::path dir_;
};

Config eq_config(uint64_t seed) {
  Config cfg;
  cfg.max_rank = 2;
  cfg.seed = seed;
  cfg.initial_capacity = 1 << 13;
  return cfg;
}

TEST_F(EngineEquivalence, ChurnStreams) {
  for (const uint64_t seed : {11u, 73u}) {
    ChurnStream::Options so;
    so.n = 220;
    so.target_edges = 480;
    so.zipf_s = 0.7;
    so.seed = seed;
    ChurnStream stream(so);
    const auto batches = record_stream(stream, 12, 22);
    check_matrix(eq_config(1000 + seed), batches,
                 "churn_s" + std::to_string(seed));
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(EngineEquivalence, OscillationStreams) {
  for (const uint64_t seed : {5u, 29u}) {
    OscillationStream::Options so;
    so.n = 256;
    so.core_edges = 96;
    so.background_edges = 220;
    so.seed = seed;
    OscillationStream stream(so);
    const auto batches = record_stream(stream, 12, 22);
    check_matrix(eq_config(2000 + seed), batches,
                 "osc_s" + std::to_string(seed));
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(EngineEquivalence, PowerLawStreams) {
  for (const uint64_t seed : {3u, 41u}) {
    PowerLawStream::Options so;
    so.n = 256;
    so.target_edges = 460;
    so.s = 1.2;
    so.seed = seed;
    PowerLawStream stream(so);
    const auto batches = record_stream(stream, 12, 22);
    check_matrix(eq_config(3000 + seed), batches,
                 "pl_s" + std::to_string(seed));
    if (testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pdmm
