// Cross-thread-count determinism of the batch-parallel update path.
//
// The matcher's contract (matcher.h) promises bit-identical state and
// counters for a fixed seed regardless of the pool size. The grouped
// structural phases, the S_l bitmask refresh and the chunk-claim thread
// pool all lean on that promise — every mutation batch is totally ordered
// by construction — so this suite drives a seeds x threads(1,2,4,8) matrix
// over the three scenario streams (churn, power-law hubs, oscillation) and
// asserts that the full serialized state, the matching, and the work /
// rounds counters match the single-thread reference exactly, batch by
// batch.
//
// The pools here opt into oversubscription (the production default clamps
// to the hardware concurrency), so the matrix exercises genuinely
// concurrent, preemption-diverse schedules even on a small CI box.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/checker.h"
#include "core/matcher.h"
#include "param_name.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

struct RunResult {
  std::string snapshot;   // full serialized matcher state
  uint64_t work = 0;
  uint64_t rounds = 0;
  size_t matching = 0;
  std::vector<uint64_t> per_batch_work;  // localizes a divergence
};

enum class StreamKind { kChurn, kPowerLaw, kOscillation };

const char* stream_name(StreamKind k) {
  switch (k) {
    case StreamKind::kChurn: return "churn";
    case StreamKind::kPowerLaw: return "powerlaw";
    default: return "oscillation";
  }
}

template <typename Stream>
void drive(DynamicMatcher& m, Stream& stream, size_t batches,
           size_t batch_size, RunResult& out) {
  for (size_t i = 0; i < batches; ++i) {
    const Batch b = stream.next(batch_size);
    std::vector<EdgeId> dels;
    dels.reserve(b.deletions.size());
    for (const auto& eps : b.deletions) {
      const EdgeId e = m.find_edge(eps);
      ASSERT_NE(e, kNoEdge);
      dels.push_back(e);
    }
    const auto res = m.update(dels, b.insertions);
    out.work += res.work;
    out.rounds += res.rounds;
    out.per_batch_work.push_back(res.work);
  }
}

RunResult run_stream(StreamKind kind, uint64_t seed, unsigned threads) {
  ThreadPool pool(threads, /*allow_oversubscribe=*/true);
  Config cfg;
  cfg.max_rank = 2;
  cfg.seed = seed;
  cfg.initial_capacity = 1 << 14;
  cfg.auto_rebuild = false;
  DynamicMatcher m(cfg, pool);

  RunResult out;
  constexpr size_t kBatches = 20;
  constexpr size_t kBatchSize = 96;
  switch (kind) {
    case StreamKind::kChurn: {
      ChurnStream::Options so;
      so.n = 512;
      so.target_edges = 1024;
      so.seed = seed + 101;
      ChurnStream stream(so);
      drive(m, stream, kBatches, kBatchSize, out);
      break;
    }
    case StreamKind::kPowerLaw: {
      PowerLawStream::Options so;
      so.n = 512;
      so.target_edges = 1024;
      so.s = 1.1;
      so.seed = seed + 202;
      PowerLawStream stream(so);
      drive(m, stream, kBatches, kBatchSize, out);
      break;
    }
    case StreamKind::kOscillation: {
      OscillationStream::Options so;
      so.n = 512;
      so.core_edges = 256;
      so.background_edges = 512;
      so.seed = seed + 303;
      OscillationStream stream(so);
      drive(m, stream, kBatches, kBatchSize, out);
      break;
    }
  }

  out.matching = m.matching_size();
  // Full invariant sweep at every matrix point: besides the paper's
  // invariants this cross-validates the SoA hot lanes against the cold
  // per-vertex structures at each thread count before bytes are compared.
  MatchingChecker::check(m);
  std::ostringstream snap;
  EXPECT_TRUE(m.save(snap));
  out.snapshot = snap.str();
  return out;
}

struct MatrixParams {
  StreamKind stream;
  uint64_t seed;
};

std::string matrix_name(const testing::TestParamInfo<MatrixParams>& info) {
  return testing_util::name_cat(stream_name(info.param.stream), "_s",
                                info.param.seed);
}

class ThreadDeterminism : public testing::TestWithParam<MatrixParams> {};

TEST_P(ThreadDeterminism, StateAndCountersMatchAcrossThreadCounts) {
  const auto p = GetParam();
  const RunResult ref = run_stream(p.stream, p.seed, 1);
  EXPECT_GT(ref.matching, 0u);
  EXPECT_GT(ref.work, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const RunResult got = run_stream(p.stream, p.seed, threads);
    ASSERT_EQ(got.per_batch_work.size(), ref.per_batch_work.size());
    for (size_t i = 0; i < ref.per_batch_work.size(); ++i) {
      ASSERT_EQ(got.per_batch_work[i], ref.per_batch_work[i])
          << stream_name(p.stream) << ": work diverged at batch " << i
          << " with " << threads << " threads";
    }
    EXPECT_EQ(got.work, ref.work) << threads << " threads";
    EXPECT_EQ(got.rounds, ref.rounds) << threads << " threads";
    EXPECT_EQ(got.matching, ref.matching) << threads << " threads";
    // The serialized state captures every structure including container
    // iteration orders — byte equality means the two instances are
    // indistinguishable forever after.
    EXPECT_EQ(got.snapshot, ref.snapshot)
        << stream_name(p.stream) << ": state diverged with " << threads
        << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByStreams, ThreadDeterminism,
    testing::Values(MatrixParams{StreamKind::kChurn, 7},
                    MatrixParams{StreamKind::kChurn, 8},
                    MatrixParams{StreamKind::kPowerLaw, 7},
                    MatrixParams{StreamKind::kPowerLaw, 8},
                    MatrixParams{StreamKind::kOscillation, 7},
                    MatrixParams{StreamKind::kOscillation, 8}),
    matrix_name);

}  // namespace
}  // namespace pdmm
