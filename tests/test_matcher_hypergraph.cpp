// Hypergraph-specific tests of DynamicMatcher (rank r > 2): the paper's
// generalization target (Theorem 1.1). The invariant oracle runs per batch.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/matcher.h"
#include "param_name.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

Config hyper_config(uint32_t rank, uint64_t seed = 11) {
  Config cfg;
  cfg.max_rank = rank;
  cfg.seed = seed;
  cfg.check_invariants = true;
  cfg.initial_capacity = 512;
  return cfg;
}

TEST(MatcherHyper, Rank3TriangleOfTriples) {
  ThreadPool pool(1);
  DynamicMatcher m(hyper_config(3), pool);
  // Three rank-3 edges pairwise sharing a vertex: only one can match.
  std::vector<std::vector<Vertex>> ins{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}};
  auto r = m.insert_batch(ins);
  EXPECT_EQ(m.matching_size(), 1u);
  int matched = 0;
  for (EdgeId e : r.inserted_ids) matched += m.is_matched(e);
  EXPECT_EQ(matched, 1);
}

TEST(MatcherHyper, MixedRanksUnderMaxRank) {
  ThreadPool pool(1);
  DynamicMatcher m(hyper_config(4), pool);
  // Ranks 1..4 coexist below max_rank.
  auto r = m.insert_batch(std::vector<std::vector<Vertex>>{
      {0}, {1, 2}, {3, 4, 5}, {6, 7, 8, 9}});
  EXPECT_EQ(m.matching_size(), 4u);
  for (EdgeId e : r.inserted_ids) EXPECT_TRUE(m.is_matched(e));
}

TEST(MatcherHyper, AlphaScalesWithRank) {
  ThreadPool pool(1);
  DynamicMatcher m2(hyper_config(2), pool);
  DynamicMatcher m5(hyper_config(5), pool);
  EXPECT_EQ(m2.scheme().alpha(), 8u);
  EXPECT_EQ(m5.scheme().alpha(), 20u);
}

TEST(MatcherHyper, HubOfTriplesChurn) {
  ThreadPool pool(1);
  DynamicMatcher m(hyper_config(3, 29), pool);
  // All edges share vertex 0: only one ever matched; deleting it cascades.
  std::vector<std::vector<Vertex>> spokes;
  for (Vertex i = 0; i < 80; ++i)
    spokes.push_back({0, static_cast<Vertex>(1 + 2 * i),
                      static_cast<Vertex>(2 + 2 * i)});
  m.insert_batch(spokes);
  EXPECT_EQ(m.matching_size(), 1u);
  for (int round = 0; round < 15 && m.graph().num_edges() > 0; ++round) {
    const EdgeId me = m.matched_edge_of(0);
    ASSERT_NE(me, kNoEdge);
    m.delete_batch(std::vector<EdgeId>{me});
    if (m.graph().num_edges() > 0) {
      EXPECT_EQ(m.matching_size(), 1u);
    }
  }
}

struct HyperFuzz {
  uint32_t rank;
  Vertex n;
  size_t target;
  size_t batch;
  uint64_t seed;
};

class MatcherHyperFuzz : public testing::TestWithParam<HyperFuzz> {};

TEST_P(MatcherHyperFuzz, ChurnKeepsInvariants) {
  const auto p = GetParam();
  ThreadPool pool(1);
  DynamicMatcher m(hyper_config(p.rank, p.seed), pool);
  ChurnStream::Options so;
  so.n = p.n;
  so.rank = p.rank;
  so.target_edges = p.target;
  so.seed = p.seed;
  ChurnStream stream(so);
  size_t updates = 0;
  while (updates < 3 * p.target) {
    const Batch b = stream.next(p.batch);
    updates += b.deletions.size() + b.insertions.size();
    std::vector<EdgeId> dels;
    for (const auto& eps : b.deletions) {
      const EdgeId e = m.find_edge(eps);
      ASSERT_NE(e, kNoEdge);
      dels.push_back(e);
    }
    m.update(dels, b.insertions);
  }
  EXPECT_EQ(m.stats().settle_fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, MatcherHyperFuzz,
    testing::Values(HyperFuzz{3, 60, 120, 12, 1}, HyperFuzz{3, 60, 120, 12, 2},
                    HyperFuzz{4, 80, 150, 16, 3}, HyperFuzz{5, 100, 150, 16, 4},
                    HyperFuzz{6, 120, 200, 25, 5}, HyperFuzz{8, 200, 250, 32, 6},
                    HyperFuzz{3, 400, 800, 64, 7}, HyperFuzz{4, 30, 200, 16, 8}),
    [](const auto& info) {
      const auto& p = info.param;
      return testing_util::name_cat("r", p.rank, "_n", p.n, "_s", p.seed);
    });

// Matching size is always at least 1/r of maximum matching; on a disjoint
// union of k cliques-of-triples it is exactly computable.
TEST(MatcherHyper, SizeLowerBoundOnBlocks) {
  ThreadPool pool(1);
  DynamicMatcher m(hyper_config(3), pool);
  // 30 disjoint groups of 3 mutually-overlapping triples: max matching = 30,
  // any maximal matching also 30 (one per group).
  std::vector<std::vector<Vertex>> ins;
  for (Vertex g = 0; g < 30; ++g) {
    const Vertex base = g * 6;
    ins.push_back({base, static_cast<Vertex>(base + 1),
                   static_cast<Vertex>(base + 2)});
    ins.push_back({base, static_cast<Vertex>(base + 3),
                   static_cast<Vertex>(base + 4)});
    ins.push_back({static_cast<Vertex>(base + 1),
                   static_cast<Vertex>(base + 3),
                   static_cast<Vertex>(base + 5)});
  }
  m.insert_batch(ins);
  EXPECT_GE(m.matching_size(), 30u);
}

}  // namespace
}  // namespace pdmm
