// Snapshot / restore tests: a restored matcher must be structurally
// indistinguishable from the original (full invariant oracle) and continue
// *bit-identically* under the same seed and update stream — and the loader
// must treat its input as untrusted: every corpus of truncated, duplicated,
// out-of-bounds and non-numeric mutations below must come back as a
// recoverable SnapshotError (never a crash, abort or out-of-bounds access;
// the ASan job runs this file to enforce the latter), leaving the matcher
// reset and fully usable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/checker.h"
#include "core/matcher.h"
#include "param_name.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

Config snap_config(uint32_t rank = 2, uint64_t seed = 77) {
  Config cfg;
  cfg.max_rank = rank;
  cfg.seed = seed;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 14;
  cfg.auto_rebuild = false;  // keep the stream-long N stable in these tests
  return cfg;
}

void drive(DynamicMatcher& m, ChurnStream& stream, int batches, size_t k) {
  for (int i = 0; i < batches; ++i) {
    const Batch b = stream.next(k);
    std::vector<EdgeId> dels;
    for (const auto& eps : b.deletions) dels.push_back(m.find_edge(eps));
    m.update(dels, b.insertions);
  }
}

std::string save_str(const DynamicMatcher& m) {
  std::stringstream buf;
  EXPECT_TRUE(m.save(buf));
  return buf.str();
}

SnapshotError load_str(DynamicMatcher& m, const std::string& snapshot) {
  std::istringstream in(snapshot);
  return m.load(in);
}

struct SnapParams {
  uint32_t rank;
  Vertex n;
  size_t target;
  uint64_t seed;
};

class Snapshot : public testing::TestWithParam<SnapParams> {};

TEST_P(Snapshot, RestoredStatePassesOracleAndMatches) {
  const auto p = GetParam();
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(p.rank, p.seed), pool);
  ChurnStream::Options so;
  so.n = p.n;
  so.rank = p.rank;
  so.target_edges = p.target;
  so.zipf_s = 0.6;  // exercise temp-deleted sets
  so.seed = p.seed + 1;
  ChurnStream stream(so);
  drive(a, stream, 25, 32);

  DynamicMatcher b(snap_config(p.rank, p.seed), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_TRUE(err.ok()) << err.to_string();
  MatchingChecker::check(b);
  EXPECT_EQ(a.matching(), b.matching());
  EXPECT_EQ(a.matching_size(), b.matching_size());
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
  for (Vertex v = 0; v < p.n; ++v) {
    EXPECT_EQ(a.vertex_level(v), b.vertex_level(v)) << "vertex " << v;
  }
}

TEST_P(Snapshot, ContinuationIsBitIdentical) {
  const auto p = GetParam();
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(p.rank, p.seed), pool);
  ChurnStream::Options so;
  so.n = p.n;
  so.rank = p.rank;
  so.target_edges = p.target;
  so.zipf_s = 0.6;
  so.seed = p.seed + 1;
  ChurnStream stream_a(so);
  drive(a, stream_a, 20, 32);

  DynamicMatcher b(snap_config(p.rank, p.seed), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_TRUE(err.ok()) << err.to_string();

  // Continue both under identical batches; every intermediate state must
  // agree exactly (ids included — the free-list order is preserved).
  for (int i = 0; i < 15; ++i) {
    const Batch batch = stream_a.next(32);
    auto resolve = [](DynamicMatcher& m, const Batch& bt) {
      std::vector<EdgeId> dels;
      for (const auto& eps : bt.deletions) dels.push_back(m.find_edge(eps));
      return dels;
    };
    const auto ra = a.update(resolve(a, batch), batch.insertions);
    const auto rb = b.update(resolve(b, batch), batch.insertions);
    ASSERT_EQ(ra.inserted_ids, rb.inserted_ids);
    ASSERT_EQ(ra.newly_matched, rb.newly_matched);
    ASSERT_EQ(ra.newly_unmatched, rb.newly_unmatched);
    ASSERT_EQ(a.matching(), b.matching());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Snapshot,
    testing::Values(SnapParams{2, 64, 128, 1}, SnapParams{2, 64, 128, 2},
                    SnapParams{2, 200, 600, 3}, SnapParams{3, 80, 160, 4},
                    SnapParams{4, 100, 150, 5}, SnapParams{2, 32, 256, 6}),
    [](const auto& info) {
      const auto& p = info.param;
      return testing_util::name_cat("r", p.rank, "_n", p.n, "_s", p.seed);
    });

// ---------------------------------------------------------------------------
// Save -> load -> continue equivalence across stream shapes and thread
// counts: the continuation of a restored matcher must be byte-identical
// (full save() output) to the original's, whatever pool drives it.
// ---------------------------------------------------------------------------

enum class StreamKind { kChurn, kOscillation };

struct ContinueParams {
  StreamKind stream;
  unsigned threads;
};

class SaveLoadContinue : public testing::TestWithParam<ContinueParams> {};

TEST_P(SaveLoadContinue, ContinuationSnapshotsByteIdentical) {
  const auto p = GetParam();
  ThreadPool pool(p.threads, /*allow_oversubscribe=*/true);
  Config cfg = snap_config(2, 404);
  cfg.check_invariants = false;  // matrix is about state, oracle runs below

  auto next_batch = [&](auto& stream) { return stream.next(48); };
  auto run = [&](auto make_stream) {
    DynamicMatcher a(cfg, pool);
    auto stream = make_stream();
    for (int i = 0; i < 30; ++i) {
      const Batch b = next_batch(stream);
      a.update_by_endpoints(b.deletions, b.insertions);
    }
    const std::string snap = save_str(a);

    DynamicMatcher b(cfg, pool);
    const SnapshotError err = load_str(b, snap);
    ASSERT_TRUE(err.ok()) << err.to_string();
    ASSERT_EQ(save_str(b), snap) << "restored state must re-save "
                                    "byte-identically";
    for (int i = 0; i < 20; ++i) {
      const Batch batch = next_batch(stream);
      a.update_by_endpoints(batch.deletions, batch.insertions);
      b.update_by_endpoints(batch.deletions, batch.insertions);
    }
    MatchingChecker::check(b);
    ASSERT_EQ(save_str(a), save_str(b))
        << "continuation diverged after restore";
  };

  if (p.stream == StreamKind::kChurn) {
    run([] {
      ChurnStream::Options so;
      so.n = 300;
      so.target_edges = 700;
      so.zipf_s = 0.5;
      so.seed = 11;
      return ChurnStream(so);
    });
  } else {
    run([] {
      OscillationStream::Options so;
      so.n = 300;
      so.core_edges = 128;
      so.background_edges = 400;
      so.seed = 12;
      return OscillationStream(so);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SaveLoadContinue,
    testing::Values(ContinueParams{StreamKind::kChurn, 1},
                    ContinueParams{StreamKind::kChurn, 2},
                    ContinueParams{StreamKind::kChurn, 4},
                    ContinueParams{StreamKind::kOscillation, 1},
                    ContinueParams{StreamKind::kOscillation, 2},
                    ContinueParams{StreamKind::kOscillation, 4}),
    [](const auto& info) {
      const auto& p = info.param;
      return testing_util::name_cat(
          p.stream == StreamKind::kChurn ? "churn" : "oscillation", "_t",
          p.threads);
    });

TEST(SnapshotBasic, EmptyMatcherRoundTrips) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(), pool);
  DynamicMatcher b(snap_config(), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_TRUE(err.ok()) << err.to_string();
  EXPECT_EQ(b.matching_size(), 0u);
  EXPECT_EQ(b.graph().num_edges(), 0u);
  // And it still works afterwards.
  b.insert_batch(std::vector<std::vector<Vertex>>{{0, 1}});
  EXPECT_EQ(b.matching_size(), 1u);
}

TEST(SnapshotBasic, PreservesTempDeletedRelationships) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 9), pool);
  std::vector<std::vector<Vertex>> spokes;
  for (Vertex i = 1; i <= 120; ++i) spokes.push_back({0, i});
  a.insert_batch(spokes);

  DynamicMatcher b(snap_config(2, 9), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_TRUE(err.ok()) << err.to_string();
  MatchingChecker::check(b);
  size_t temp_a = 0, temp_b = 0;
  for (EdgeId e : a.graph().all_edges()) temp_a += a.is_temp_deleted(e);
  for (EdgeId e : b.graph().all_edges()) temp_b += b.is_temp_deleted(e);
  EXPECT_GT(temp_a, 0u);
  EXPECT_EQ(temp_a, temp_b);
}

TEST(SnapshotBasic, SeedMismatchIsRecoverableError) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 1), pool);
  DynamicMatcher b(snap_config(2, 2), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.message.find("seed"), std::string::npos) << err.to_string();
  EXPECT_EQ(err.line, 2u);
}

TEST(SnapshotBasic, RankMismatchIsRecoverableError) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 1), pool);
  DynamicMatcher b(snap_config(3, 1), pool);
  const SnapshotError err = load_str(b, save_str(a));
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.message.find("rank"), std::string::npos) << err.to_string();
}

TEST(SnapshotBasic, SaveReportsStreamFailure) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(), pool);
  std::ostringstream out;
  out.setstate(std::ios::badbit);  // closed pipe / full disk stand-in
  EXPECT_FALSE(a.save(out));
  // A file stream on a path that cannot exist fails the same way
  // end-to-end (the fstream never opens, so every write fails).
  std::ofstream bad("/nonexistent_pdmm_dir/impossible/snap.txt");
  EXPECT_FALSE(a.save(bad));
  // And a healthy stream succeeds.
  std::ostringstream ok;
  EXPECT_TRUE(a.save(ok));
  EXPECT_FALSE(ok.str().empty());
}

// ---------------------------------------------------------------------------
// Golden fixture: a committed byte-exact snapshot of a fixed driven state
// (tests/fixtures/). Pins the on-disk format itself, not just round-trip
// consistency — an internal refactor (e.g. the SoA vertex-state split) must
// not move a single byte. Regenerate deliberately with
// PDMM_UPDATE_FIXTURES=1 when a format change is intended.
// ---------------------------------------------------------------------------

TEST(SnapshotGolden, CommittedFixtureIsReproducedByteExact) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 4242), pool);
  ChurnStream::Options so;
  so.n = 192;
  so.target_edges = 448;
  so.zipf_s = 0.7;  // dense hubs: the fixture carries o/a/d/bd lines
  so.seed = 4243;
  ChurnStream stream(so);
  drive(a, stream, 24, 32);
  const std::string produced = save_str(a);

  const std::string path =
      std::string(PDMM_FIXTURE_DIR) + "/golden_churn_rank2.snap";
  if (std::getenv("PDMM_UPDATE_FIXTURES")) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << produced;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "fixture regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden fixture " << path
      << " (regenerate with PDMM_UPDATE_FIXTURES=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(produced, want.str())
      << "snapshot bytes diverged from the committed golden fixture; if "
         "the format change is intentional, regenerate with "
         "PDMM_UPDATE_FIXTURES=1 and review the diff";
  // The committed bytes must also still load into a healthy matcher.
  DynamicMatcher b(snap_config(2, 4242), pool);
  const SnapshotError err = load_str(b, want.str());
  ASSERT_TRUE(err.ok()) << err.to_string();
  MatchingChecker::check(b);
  EXPECT_EQ(a.matching_size(), b.matching_size());
}

// ---------------------------------------------------------------------------
// Corruption corpus: systematic mutations of a real snapshot. Every mutant
// must produce a recoverable error — never a crash, abort or OOB — and
// leave the matcher usable (verified by driving it afterwards).
// ---------------------------------------------------------------------------

class SnapshotCorpus : public testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<ThreadPool>(1);
    DynamicMatcher a(snap_config(2, 31), *pool_);
    ChurnStream::Options so;
    so.n = 160;
    so.target_edges = 400;
    so.zipf_s = 0.7;  // dense hubs: temp-deleted sets, D(e), bd lines
    so.seed = 32;
    ChurnStream stream(so);
    drive(a, stream, 30, 32);
    snapshot_ = save_str(a);
    lines_ = split_lines(snapshot_);
    // The corpus relies on every tag being present in the specimen.
    for (const char* tag :
         {"cfg", "sch", "reg", "e", "f", "nv", "v", "o", "a", "d", "bd",
          "end"}) {
      ASSERT_NE(find_line(tag), lines_.size()) << "specimen lacks a '" << tag
                                               << "' line";
    }
  }

  static std::vector<std::string> split_lines(const std::string& s) {
    std::vector<std::string> out;
    size_t start = 0;
    while (start < s.size()) {
      const size_t nl = s.find('\n', start);
      out.push_back(s.substr(start, nl - start));
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
    return out;
  }

  size_t find_line(const std::string& tag) const {
    for (size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].rfind(tag + " ", 0) == 0 || lines_[i] == tag) return i;
    }
    return lines_.size();
  }

  static std::string join(const std::vector<std::string>& lines) {
    std::string out;
    for (const auto& l : lines) {
      out += l;
      out += '\n';
    }
    return out;
  }

  // The core assertion: the mutant must fail recoverably and the matcher
  // must remain usable afterwards.
  void expect_rejected(const std::string& mutant, const std::string& what) {
    DynamicMatcher m(snap_config(2, 31), *pool_);
    const SnapshotError err = load_str(m, mutant);
    EXPECT_FALSE(err.ok()) << what << ": mutant was accepted";
    // Failed loads reset to empty; the matcher still matches afterwards.
    EXPECT_EQ(m.graph().num_edges(), 0u) << what;
    m.insert_batch(std::vector<std::vector<Vertex>>{{0, 1}, {2, 3}});
    EXPECT_EQ(m.matching_size(), 2u) << what;
    MatchingChecker::check(m);
  }

  std::unique_ptr<ThreadPool> pool_;
  std::string snapshot_;
  std::vector<std::string> lines_;
};

TEST_F(SnapshotCorpus, SpecimenItselfLoads) {
  DynamicMatcher m(snap_config(2, 31), *pool_);
  const SnapshotError err = load_str(m, snapshot_);
  ASSERT_TRUE(err.ok()) << err.to_string();
  MatchingChecker::check(m);
}

TEST_F(SnapshotCorpus, EveryLinePrefixIsRejected) {
  // Dropping any suffix of lines (including just the end trailer) must be
  // detected as truncation.
  for (size_t keep = 0; keep < lines_.size(); ++keep) {
    std::vector<std::string> prefix(lines_.begin(),
                                    lines_.begin() + static_cast<long>(keep));
    expect_rejected(join(prefix),
                    "prefix of " + std::to_string(keep) + " lines");
  }
}

TEST_F(SnapshotCorpus, MidLineTruncationIsRejected) {
  // Cut the byte stream mid-line at a sample of offsets (every 97th byte
  // keeps the corpus fast while hitting every line kind in practice).
  for (size_t cut = 1; cut + 1 < snapshot_.size(); cut += 97) {
    if (snapshot_[cut - 1] == '\n') continue;  // line-boundary cuts above
    expect_rejected(snapshot_.substr(0, cut),
                    "byte-truncated at " + std::to_string(cut));
  }
}

TEST_F(SnapshotCorpus, TruncatedTagLinesAreRejected) {
  // Drop the last token of one representative line per tag.
  for (const char* tag : {"cfg", "sch", "reg", "e", "nv", "v", "a", "bd"}) {
    const size_t i = find_line(tag);
    auto mutant = lines_;
    const size_t sp = mutant[i].find_last_of(' ');
    ASSERT_NE(sp, std::string::npos);
    mutant[i] = mutant[i].substr(0, sp);
    expect_rejected(join(mutant), std::string("truncated '") + tag +
                                      "' line: " + mutant[i]);
  }
}

TEST_F(SnapshotCorpus, DuplicatedTagLinesAreRejected) {
  for (const char* tag : {"e", "f", "v", "o", "a", "d", "bd"}) {
    const size_t i = find_line(tag);
    auto mutant = lines_;
    // Re-insert a copy right after the original (before `end`).
    mutant.insert(mutant.begin() + static_cast<long>(i) + 1, lines_[i]);
    expect_rejected(join(mutant),
                    std::string("duplicated '") + tag + "' line");
  }
}

TEST_F(SnapshotCorpus, OutOfBoundsIdsAreRejected) {
  // Replace the id field (token 1) of each id-bearing tag with a value
  // beyond the declared bound, and separately with a giant one.
  for (const char* tag : {"e", "v", "o", "a", "d", "bd"}) {
    for (const char* big : {"999999", "4294967295", "18446744073709551615"}) {
      const size_t i = find_line(tag);
      auto mutant = lines_;
      std::istringstream ls(lines_[i]);
      std::string t, id;
      ls >> t >> id;
      std::string rest;
      std::getline(ls, rest);
      mutant[i] = t + " " + big + rest;
      expect_rejected(join(mutant), std::string("oob id in '") + tag +
                                        "' line -> " + big);
    }
  }
  {
    // An out-of-bounds *member* id too (last token of the o line).
    const size_t i = find_line("o");
    auto mutant = lines_;
    const size_t sp = mutant[i].find_last_of(' ');
    mutant[i] = mutant[i].substr(0, sp) + " 888888";
    expect_rejected(join(mutant), "oob member id in 'o' line");
  }
}

TEST_F(SnapshotCorpus, NonNumericFieldsAreRejected) {
  for (const char* tag : {"cfg", "sch", "reg", "e", "f", "nv", "v", "o",
                          "a", "d", "bd"}) {
    const size_t i = find_line(tag);
    auto mutant = lines_;
    const size_t sp = mutant[i].find_last_of(' ');
    ASSERT_NE(sp, std::string::npos) << tag;
    mutant[i] = mutant[i].substr(0, sp + 1) + "xyz";
    expect_rejected(join(mutant), std::string("non-numeric field in '") +
                                      tag + "' line");
  }
  {
    // Negative where unsigned is required.
    const size_t i = find_line("e");
    auto mutant = lines_;
    std::istringstream ls(lines_[i]);
    std::string t, id;
    ls >> t >> id;
    std::string rest;
    std::getline(ls, rest);
    mutant[i] = t + " -1" + rest;
    expect_rejected(join(mutant), "negative edge id");
  }
}

TEST_F(SnapshotCorpus, UnknownTagAndHeaderMutationsAreRejected) {
  {
    auto mutant = lines_;
    mutant.insert(mutant.begin() + 4, "zz 1 2 3");
    expect_rejected(join(mutant), "unknown tag line");
  }
  {
    auto mutant = lines_;
    mutant[0] = "pdmm-snapshot v2";
    expect_rejected(join(mutant), "wrong version");
  }
  {
    auto mutant = lines_;
    mutant[0] = "garbage";
    expect_rejected(join(mutant), "garbage header");
  }
}

TEST_F(SnapshotCorpus, CountMismatchesAreRejected) {
  {
    // Inflate the declared num_alive.
    const size_t i = find_line("reg");
    auto mutant = lines_;
    std::istringstream ls(lines_[i]);
    std::string t, bound, alive;
    ls >> t >> bound >> alive;
    mutant[i] = t + " " + bound + " " +
                std::to_string(std::stoull(alive) + 1);
    expect_rejected(join(mutant), "inflated num_alive");
  }
  {
    // Strip the matched flag off an edge while its endpoints still claim
    // it: the post-load verification must notice the disagreement.
    size_t i = lines_.size();
    for (size_t j = 0; j < lines_.size(); ++j) {
      if (lines_[j].rfind("e ", 0) != 0) continue;
      std::istringstream ls(lines_[j]);
      std::string tok;
      std::vector<std::string> toks;
      while (ls >> tok) toks.push_back(tok);
      if (toks[toks.size() - 2] == "1") {  // flags field == kMatched
        i = j;
        break;
      }
    }
    ASSERT_NE(i, lines_.size()) << "no matched edge in specimen";
    auto mutant = lines_;
    const size_t flags_pos = mutant[i].find_last_of(' ');
    const size_t before = mutant[i].find_last_of(' ', flags_pos - 1);
    mutant[i] = mutant[i].substr(0, before + 1) + "0" +
                mutant[i].substr(flags_pos);
    expect_rejected(join(mutant), "unflagged matched edge");
  }
  {
    // Remove one id from the free list: the id becomes unaccounted for.
    const size_t i = find_line("f");
    auto mutant = lines_;
    const size_t sp = mutant[i].find_last_of(' ');
    if (sp != std::string::npos && sp > 1) {
      mutant[i] = mutant[i].substr(0, sp);
      expect_rejected(join(mutant), "free id dropped");
    }
  }
  {
    // A D-deletion budget on a dead (free-listed) edge: in-bounds id, but
    // no reachable state has epoch_d_deleted_ != 0 off a matched edge.
    std::istringstream fs(lines_[find_line("f")]);
    std::string tag, free_id;
    fs >> tag;
    if (fs >> free_id) {
      const size_t bi = find_line("bd");
      std::istringstream bs(lines_[bi]);
      std::string t, id, budget;
      bs >> t >> id >> budget;
      auto mutant = lines_;
      mutant[bi] = "bd " + free_id + " " + budget;
      expect_rejected(join(mutant), "bd budget on a free-listed edge");
    }
  }
}

TEST_F(SnapshotCorpus, HostileBoundsAreRejectedBeforeAllocating) {
  // Bounds beyond the id/vertex domains are rejected at the header line,
  // before any array is sized from them. (Mid-size hostile bounds that
  // pass the domain check are covered by the loader's bad_alloc guard —
  // not exercised here because provoking real allocation failure is
  // environment-dependent.)
  {
    std::string mutant = "pdmm-snapshot v1\n";
    mutant += lines_[1] + "\n" + lines_[2] + "\n";
    mutant += "reg 18446744073709551615 0\nf\nnv 0\nend\n";
    expect_rejected(mutant, "hostile reg id_bound");
  }
  {
    std::string mutant = "pdmm-snapshot v1\n";
    mutant += lines_[1] + "\n" + lines_[2] + "\n";
    mutant += "reg 0 0\nf\nnv 18446744073709551615\nend\n";
    expect_rejected(mutant, "hostile nv bound");
  }
}

}  // namespace
}  // namespace pdmm
