// Snapshot / restore tests: a restored matcher must be structurally
// indistinguishable from the original (full invariant oracle) and continue
// *bit-identically* under the same seed and update stream.
#include <gtest/gtest.h>

#include <sstream>

#include "core/checker.h"
#include "core/matcher.h"
#include "param_name.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

Config snap_config(uint32_t rank = 2, uint64_t seed = 77) {
  Config cfg;
  cfg.max_rank = rank;
  cfg.seed = seed;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 14;
  cfg.auto_rebuild = false;  // keep the stream-long N stable in these tests
  return cfg;
}

void drive(DynamicMatcher& m, ChurnStream& stream, int batches, size_t k) {
  for (int i = 0; i < batches; ++i) {
    const Batch b = stream.next(k);
    std::vector<EdgeId> dels;
    for (const auto& eps : b.deletions) dels.push_back(m.find_edge(eps));
    m.update(dels, b.insertions);
  }
}

struct SnapParams {
  uint32_t rank;
  Vertex n;
  size_t target;
  uint64_t seed;
};

class Snapshot : public testing::TestWithParam<SnapParams> {};

TEST_P(Snapshot, RestoredStatePassesOracleAndMatches) {
  const auto p = GetParam();
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(p.rank, p.seed), pool);
  ChurnStream::Options so;
  so.n = p.n;
  so.rank = p.rank;
  so.target_edges = p.target;
  so.zipf_s = 0.6;  // exercise temp-deleted sets
  so.seed = p.seed + 1;
  ChurnStream stream(so);
  drive(a, stream, 25, 32);

  std::stringstream buf;
  a.save(buf);

  DynamicMatcher b(snap_config(p.rank, p.seed), pool);
  b.load(buf);
  MatchingChecker::check(b);
  EXPECT_EQ(a.matching(), b.matching());
  EXPECT_EQ(a.matching_size(), b.matching_size());
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
  for (Vertex v = 0; v < p.n; ++v) {
    EXPECT_EQ(a.vertex_level(v), b.vertex_level(v)) << "vertex " << v;
  }
}

TEST_P(Snapshot, ContinuationIsBitIdentical) {
  const auto p = GetParam();
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(p.rank, p.seed), pool);
  ChurnStream::Options so;
  so.n = p.n;
  so.rank = p.rank;
  so.target_edges = p.target;
  so.zipf_s = 0.6;
  so.seed = p.seed + 1;
  ChurnStream stream_a(so);
  drive(a, stream_a, 20, 32);

  std::stringstream buf;
  a.save(buf);
  DynamicMatcher b(snap_config(p.rank, p.seed), pool);
  b.load(buf);

  // Continue both under identical batches; every intermediate state must
  // agree exactly (ids included — the free-list order is preserved).
  for (int i = 0; i < 15; ++i) {
    const Batch batch = stream_a.next(32);
    auto resolve = [](DynamicMatcher& m, const Batch& bt) {
      std::vector<EdgeId> dels;
      for (const auto& eps : bt.deletions) dels.push_back(m.find_edge(eps));
      return dels;
    };
    const auto ra = a.update(resolve(a, batch), batch.insertions);
    const auto rb = b.update(resolve(b, batch), batch.insertions);
    ASSERT_EQ(ra.inserted_ids, rb.inserted_ids);
    ASSERT_EQ(ra.newly_matched, rb.newly_matched);
    ASSERT_EQ(ra.newly_unmatched, rb.newly_unmatched);
    ASSERT_EQ(a.matching(), b.matching());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Snapshot,
    testing::Values(SnapParams{2, 64, 128, 1}, SnapParams{2, 64, 128, 2},
                    SnapParams{2, 200, 600, 3}, SnapParams{3, 80, 160, 4},
                    SnapParams{4, 100, 150, 5}, SnapParams{2, 32, 256, 6}),
    [](const auto& info) {
      const auto& p = info.param;
      return testing_util::name_cat("r", p.rank, "_n", p.n, "_s", p.seed);
    });

TEST(SnapshotBasic, EmptyMatcherRoundTrips) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(), pool);
  std::stringstream buf;
  a.save(buf);
  DynamicMatcher b(snap_config(), pool);
  b.load(buf);
  EXPECT_EQ(b.matching_size(), 0u);
  EXPECT_EQ(b.graph().num_edges(), 0u);
  // And it still works afterwards.
  b.insert_batch(std::vector<std::vector<Vertex>>{{0, 1}});
  EXPECT_EQ(b.matching_size(), 1u);
}

TEST(SnapshotBasic, PreservesTempDeletedRelationships) {
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 9), pool);
  std::vector<std::vector<Vertex>> spokes;
  for (Vertex i = 1; i <= 120; ++i) spokes.push_back({0, i});
  a.insert_batch(spokes);

  std::stringstream buf;
  a.save(buf);
  DynamicMatcher b(snap_config(2, 9), pool);
  b.load(buf);
  MatchingChecker::check(b);
  size_t temp_a = 0, temp_b = 0;
  for (EdgeId e : a.graph().all_edges()) temp_a += a.is_temp_deleted(e);
  for (EdgeId e : b.graph().all_edges()) temp_b += b.is_temp_deleted(e);
  EXPECT_GT(temp_a, 0u);
  EXPECT_EQ(temp_a, temp_b);
}

TEST(SnapshotBasic, SeedMismatchRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 1), pool);
  std::stringstream buf;
  a.save(buf);
  DynamicMatcher b(snap_config(2, 2), pool);
  EXPECT_DEATH(b.load(buf), "seed");
}

TEST(SnapshotBasic, RankMismatchRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(1);
  DynamicMatcher a(snap_config(2, 1), pool);
  std::stringstream buf;
  a.save(buf);
  DynamicMatcher b(snap_config(3, 1), pool);
  EXPECT_DEATH(b.load(buf), "rank");
}

}  // namespace
}  // namespace pdmm
