// Tests of the three baselines, plus cross-validation of all four
// implementations over identical update streams.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/greedy_dynamic.h"
#include "baselines/pdmm_adapter.h"
#include "baselines/sequential_dynamic.h"
#include "baselines/static_recompute.h"
#include "core/checker.h"
#include "param_name.h"
#include "workload/generators.h"

namespace pdmm {
namespace {

std::vector<Vertex> V(std::initializer_list<Vertex> l) { return l; }

TEST(SequentialDynamic, BasicLifecycle) {
  SequentialDynamicMatcher::Options opt;
  opt.check_invariants = true;
  SequentialDynamicMatcher m(opt);
  const EdgeId a = m.insert_edge(V({0, 1}));
  const EdgeId b = m.insert_edge(V({1, 2}));
  EXPECT_TRUE(m.is_matched(a));
  EXPECT_FALSE(m.is_matched(b));
  m.delete_edge(a);
  EXPECT_TRUE(m.is_matched(b)) << "blocked edge promoted after deletion";
  EXPECT_EQ(m.matching_size(), 1u);
}

TEST(SequentialDynamic, HubRisingCreatesTempDeletions) {
  SequentialDynamicMatcher::Options opt;
  opt.check_invariants = true;
  opt.initial_capacity = 4096;
  SequentialDynamicMatcher m(opt);
  for (Vertex i = 1; i <= 150; ++i) m.insert_edge(V({0, i}));
  EXPECT_EQ(m.matching_size(), 1u);
  EXPECT_GT(m.vertex_level(0), 0) << "hub must rise above level 0";
  for (int round = 0; round < 20; ++round) {
    EdgeId matched = kNoEdge;
    for (EdgeId e : m.graph().all_edges())
      if (m.is_matched(e)) matched = e;
    if (matched == kNoEdge) break;
    m.delete_edge(matched);
  }
}

TEST(SequentialDynamic, ChurnInvariants) {
  SequentialDynamicMatcher::Options opt;
  opt.check_invariants = true;
  opt.initial_capacity = 8192;
  opt.max_rank = 3;
  SequentialDynamicMatcher m(opt);
  ChurnStream::Options so;
  so.n = 80;
  so.rank = 3;
  so.target_edges = 150;
  so.seed = 5;
  ChurnStream stream(so);
  for (int i = 0; i < 40; ++i) {
    const Batch b = stream.next(10);
    apply_batch(m, b);
  }
  SUCCEED();
}

TEST(GreedyDynamic, BasicLifecycle) {
  GreedyDynamicMatcher m(2);
  const EdgeId a = m.insert_edge(V({0, 1}));
  const EdgeId b = m.insert_edge(V({1, 2}));
  EXPECT_TRUE(m.is_matched(a));
  EXPECT_FALSE(m.is_matched(b));
  m.delete_edge(a);
  EXPECT_TRUE(m.is_matched(b));
  m.check_invariants();
}

TEST(GreedyDynamic, ChurnStaysMaximal) {
  GreedyDynamicMatcher m(2);
  ChurnStream::Options so;
  so.n = 100;
  so.target_edges = 250;
  so.seed = 9;
  ChurnStream stream(so);
  for (int i = 0; i < 50; ++i) {
    apply_batch(m, stream.next(20));
    m.check_invariants();
  }
}

TEST(StaticRecompute, RecomputesEachBatch) {
  ThreadPool pool(2);
  StaticRecomputeMatcher m(2, 7, pool);
  ChurnStream::Options so;
  so.n = 100;
  so.target_edges = 250;
  so.seed = 10;
  ChurnStream stream(so);
  for (int i = 0; i < 20; ++i) {
    apply_batch(m, stream.next(25));
    std::vector<EdgeId> matched;
    for (EdgeId e : m.graph().all_edges())
      if (m.is_matched(e)) matched.push_back(e);
    EXPECT_EQ(matched.size(), m.matching_size());
    MatchingChecker::check_maximal_matching(m.graph(), matched);
  }
}

// Cross-validation: all four implementations, fed the identical stream,
// maintain maximal matchings of the same graph. Sizes may differ (any
// maximal matching is legal) but by at most the factor-r bound, and the
// graphs must be identical.
class CrossValidation : public testing::TestWithParam<uint64_t> {};

TEST_P(CrossValidation, FourImplementationsAgree) {
  const uint64_t seed = GetParam();
  ThreadPool pool(2);

  Config cfg;
  cfg.max_rank = 2;
  cfg.seed = 1000 + seed;
  cfg.check_invariants = true;
  cfg.initial_capacity = 1 << 14;
  auto pdmm_m = std::make_unique<PdmmAdapter>(cfg, pool);

  SequentialDynamicMatcher::Options sopt;
  sopt.seed = 2000 + seed;
  sopt.check_invariants = true;
  sopt.initial_capacity = 1 << 14;
  auto seq = std::make_unique<SequentialDynamicMatcher>(sopt);

  auto greedy = std::make_unique<GreedyDynamicMatcher>(2);
  auto rebuild = std::make_unique<StaticRecomputeMatcher>(2, 3000 + seed, pool);

  std::vector<MatcherBase*> impls{pdmm_m.get(), seq.get(), greedy.get(),
                                  rebuild.get()};

  ChurnStream::Options so;
  so.n = 120;
  so.target_edges = 300;
  so.seed = seed;
  ChurnStream stream(so);

  for (int i = 0; i < 25; ++i) {
    const Batch b = stream.next(30);
    for (MatcherBase* m : impls) apply_batch(*m, b);
    const size_t edges = impls[0]->graph().num_edges();
    for (MatcherBase* m : impls) {
      ASSERT_EQ(m->graph().num_edges(), edges) << m->name();
    }
    // Maximal matchings of the same graph are within factor 2 (=r) in size.
    size_t mn = SIZE_MAX, mx = 0;
    for (MatcherBase* m : impls) {
      mn = std::min(mn, m->matching_size());
      mx = std::max(mx, m->matching_size());
    }
    EXPECT_LE(mx, 2 * mn) << "maximal matchings differ beyond the r-factor";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return testing_util::name_cat("s", info.param);
                         });

// EdgeId assignment must be identical across implementations (all share the
// registry discipline), so streams resolved per-matcher stay in lockstep.
TEST(CrossValidation, IdAssignmentLockstep) {
  ThreadPool pool(1);
  Config cfg;
  cfg.max_rank = 2;
  cfg.initial_capacity = 1 << 12;
  PdmmAdapter a(cfg, pool);
  GreedyDynamicMatcher b(2);
  ChurnStream::Options so;
  so.n = 50;
  so.target_edges = 120;
  so.seed = 77;
  ChurnStream stream(so);
  for (int i = 0; i < 30; ++i) {
    const Batch batch = stream.next(15);
    const auto ids_a = apply_batch(a, batch);
    const auto ids_b = apply_batch(b, batch);
    EXPECT_EQ(ids_a, ids_b);
  }
}

}  // namespace
}  // namespace pdmm
