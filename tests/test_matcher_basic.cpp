// Basic behavioural tests of DynamicMatcher: small hand-constructed
// scenarios with full invariant checking after every batch.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/matcher.h"

namespace pdmm {
namespace {

Config test_config(uint32_t rank = 2, uint64_t seed = 7) {
  Config cfg;
  cfg.max_rank = rank;
  cfg.seed = seed;
  cfg.check_invariants = true;
  cfg.initial_capacity = 64;
  return cfg;
}

std::vector<std::vector<Vertex>> edges(
    std::initializer_list<std::vector<Vertex>> l) {
  return {l.begin(), l.end()};
}

TEST(MatcherBasic, EmptyBatchesAreNoops) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.update({}, {});
  EXPECT_TRUE(r.inserted_ids.empty());
  EXPECT_TRUE(r.newly_matched.empty());
  EXPECT_EQ(m.matching_size(), 0u);
}

TEST(MatcherBasic, SingleEdgeIsMatched) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}}));
  ASSERT_EQ(r.inserted_ids.size(), 1u);
  EXPECT_NE(r.inserted_ids[0], kNoEdge);
  EXPECT_TRUE(m.is_matched(r.inserted_ids[0]));
  EXPECT_EQ(m.matching_size(), 1u);
  EXPECT_EQ(r.newly_matched.size(), 1u);
  EXPECT_EQ(m.vertex_level(0), 0);
  EXPECT_EQ(m.vertex_level(1), 0);
}

TEST(MatcherBasic, TriangleMatchesExactlyOneEdge) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_EQ(m.matching_size(), 1u);
  // All three inserted, exactly one matched.
  int matched = 0;
  for (EdgeId e : r.inserted_ids) matched += m.is_matched(e);
  EXPECT_EQ(matched, 1);
}

TEST(MatcherBasic, DisjointEdgesAllMatch) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_EQ(m.matching_size(), 4u);
  for (EdgeId e : r.inserted_ids) EXPECT_TRUE(m.is_matched(e));
}

TEST(MatcherBasic, DuplicateInsertRejected) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r1 = m.insert_batch(edges({{0, 1}}));
  auto r2 = m.insert_batch(edges({{1, 0}}));  // same canonical edge
  EXPECT_EQ(r2.inserted_ids[0], kNoEdge);
  // Duplicate within one batch.
  auto r3 = m.insert_batch(edges({{2, 3}, {3, 2}}));
  EXPECT_NE(r3.inserted_ids[0], kNoEdge);
  EXPECT_EQ(r3.inserted_ids[1], kNoEdge);
}

TEST(MatcherBasic, DeleteUnmatchedEdgeKeepsMatching) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}, {1, 2}}));
  const EdgeId matched = m.is_matched(r.inserted_ids[0]) ? r.inserted_ids[0]
                                                         : r.inserted_ids[1];
  const EdgeId other = matched == r.inserted_ids[0] ? r.inserted_ids[1]
                                                    : r.inserted_ids[0];
  auto rd = m.delete_batch(std::vector<EdgeId>{other});
  EXPECT_TRUE(m.is_matched(matched));
  EXPECT_TRUE(rd.newly_unmatched.empty());
  EXPECT_EQ(m.matching_size(), 1u);
}

TEST(MatcherBasic, DeleteMatchedEdgePromotesBlockedEdge) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  // Path 0-1-2: one edge matched, the other blocked.
  auto r = m.insert_batch(edges({{0, 1}, {1, 2}}));
  const EdgeId matched = m.is_matched(r.inserted_ids[0]) ? r.inserted_ids[0]
                                                         : r.inserted_ids[1];
  const EdgeId other = matched == r.inserted_ids[0] ? r.inserted_ids[1]
                                                    : r.inserted_ids[0];
  auto rd = m.delete_batch(std::vector<EdgeId>{matched});
  EXPECT_TRUE(m.is_matched(other)) << "blocked edge must be promoted";
  EXPECT_EQ(m.matching_size(), 1u);
  ASSERT_EQ(rd.newly_matched.size(), 1u);
  EXPECT_EQ(rd.newly_matched[0], other);
}

TEST(MatcherBasic, DeleteAndReinsertSameBatch) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}}));
  const EdgeId e = r.inserted_ids[0];
  // Delete it and insert it again in one batch: deletions run first.
  auto r2 = m.update(std::vector<EdgeId>{e}, edges({{0, 1}}));
  EXPECT_NE(r2.inserted_ids[0], kNoEdge);
  EXPECT_TRUE(m.is_matched(r2.inserted_ids[0]));
  EXPECT_EQ(m.matching_size(), 1u);
}

TEST(MatcherBasic, MixedBatchLargeStar) {
  // A star forces heavy conflict: only one star edge can ever be matched.
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  std::vector<std::vector<Vertex>> star;
  for (Vertex i = 1; i <= 40; ++i) star.push_back({0, i});
  auto r = m.insert_batch(star);
  EXPECT_EQ(m.matching_size(), 1u);
  // Delete the matched star edge; another must take over.
  EdgeId matched = kNoEdge;
  for (EdgeId e : r.inserted_ids)
    if (m.is_matched(e)) matched = e;
  ASSERT_NE(matched, kNoEdge);
  m.delete_batch(std::vector<EdgeId>{matched});
  EXPECT_EQ(m.matching_size(), 1u);
}

TEST(MatcherBasic, DeleteEverything) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}));
  std::vector<EdgeId> all;
  for (EdgeId e : r.inserted_ids) all.push_back(e);
  m.delete_batch(all);
  EXPECT_EQ(m.matching_size(), 0u);
  EXPECT_EQ(m.graph().num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v)
    EXPECT_EQ(m.vertex_level(v), kUnmatchedLevel);
}

TEST(MatcherBasic, RebuildPreservesMaximality) {
  ThreadPool pool(1);
  Config cfg = test_config();
  cfg.initial_capacity = 8;  // force rebuilds quickly
  DynamicMatcher m(cfg, pool);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<Vertex>> ins;
    for (Vertex i = 0; i < 4; ++i)
      ins.push_back({static_cast<Vertex>(8 * round + 2 * i),
                     static_cast<Vertex>(8 * round + 2 * i + 1)});
    m.insert_batch(ins);
  }
  EXPECT_GT(m.stats().rebuilds, 0u);
  EXPECT_EQ(m.matching_size(), 40u);  // all disjoint
}

TEST(MatcherBasic, ManualRebuildKeepsState) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  m.insert_batch(edges({{0, 1}, {1, 2}, {3, 4}}));
  const size_t before = m.matching_size();
  m.rebuild();
  MatchingChecker::check(m);
  EXPECT_EQ(m.matching_size(), before);  // same graph, same maximal size here
}

TEST(MatcherBasic, Rank1EdgesActAsVertexSelection) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(/*rank=*/1), pool);
  auto r = m.insert_batch(edges({{0}, {1}, {2}}));
  EXPECT_EQ(m.matching_size(), 3u);  // singletons never conflict
  m.delete_batch(std::vector<EdgeId>{r.inserted_ids[1]});
  EXPECT_EQ(m.matching_size(), 2u);
}

TEST(MatcherBasic, NewlyUnmatchedReportsDeletedMatch) {
  ThreadPool pool(1);
  DynamicMatcher m(test_config(), pool);
  auto r = m.insert_batch(edges({{0, 1}}));
  auto rd = m.delete_batch(std::vector<EdgeId>{r.inserted_ids[0]});
  ASSERT_EQ(rd.newly_unmatched.size(), 1u);
  EXPECT_EQ(rd.newly_unmatched[0], r.inserted_ids[0]);
}

}  // namespace
}  // namespace pdmm
