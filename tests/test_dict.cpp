// Unit tests for the parallel dictionary (PhaseDict), the [GMV91]-interface
// substrate of §2.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "dict/phase_dict.h"
#include "param_name.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace pdmm {
namespace {

TEST(PhaseDict, SerialInsertFindErase) {
  PhaseDict<uint32_t> d;
  d.insert(100, 1);
  d.insert(200, 2);
  EXPECT_TRUE(d.contains(100));
  EXPECT_FALSE(d.contains(300));
  EXPECT_EQ(*d.find(200), 2u);
  d.erase(100);
  EXPECT_FALSE(d.contains(100));
  EXPECT_EQ(d.size(), 1u);
}

TEST(PhaseDict, GrowsThroughRebuilds) {
  PhaseDict<uint32_t> d(4);
  for (uint64_t k = 0; k < 10000; ++k) d.insert(k, static_cast<uint32_t>(k));
  EXPECT_EQ(d.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(d.find(k), nullptr);
    EXPECT_EQ(*d.find(k), k);
  }
}

TEST(PhaseDict, TombstoneChurnStaysLinear) {
  PhaseDict<uint32_t> d(16);
  // Insert/erase churn far beyond capacity: rebuilds must reclaim
  // tombstones or probing would degrade/overflow.
  for (uint64_t round = 0; round < 50000; ++round) {
    d.insert(round, 1);
    d.erase(round);
  }
  EXPECT_EQ(d.size(), 0u);
  EXPECT_LT(d.capacity(), 4096u);
}

class PhaseDictParallel : public testing::TestWithParam<unsigned> {};

TEST_P(PhaseDictParallel, BatchOpsMatchReference) {
  ThreadPool pool(GetParam());
  PhaseDict<uint64_t> d;
  std::unordered_map<uint64_t, uint64_t> ref;
  Xoshiro256 rng(77);

  for (int round = 0; round < 30; ++round) {
    // Insert a batch of fresh keys.
    std::vector<uint64_t> keys, vals;
    while (keys.size() < 500) {
      const uint64_t k = rng.below(1 << 20);
      if (ref.count(k)) continue;
      if (std::find(keys.begin(), keys.end(), k) != keys.end()) continue;
      keys.push_back(k);
      vals.push_back(k * 7);
    }
    d.batch_insert(pool, keys, vals);
    for (size_t i = 0; i < keys.size(); ++i) ref[keys[i]] = vals[i];

    // Erase a random half of the live keys.
    std::vector<uint64_t> live;
    for (const auto& [k, v] : ref) live.push_back(k);
    std::vector<uint64_t> victims;
    for (uint64_t k : live)
      if (rng.uniform() < 0.5) victims.push_back(k);
    d.batch_erase(pool, victims);
    for (uint64_t k : victims) ref.erase(k);

    // Batch lookup of a mix of present/absent keys.
    std::vector<uint64_t> queries = victims;
    for (const auto& [k, v] : ref) queries.push_back(k);
    std::vector<uint64_t> out;
    d.batch_lookup(pool, queries, out, ~uint64_t{0});
    for (size_t i = 0; i < queries.size(); ++i) {
      auto it = ref.find(queries[i]);
      EXPECT_EQ(out[i], it == ref.end() ? ~uint64_t{0} : it->second);
    }
    EXPECT_EQ(d.size(), ref.size());
  }

  // retrieve() returns exactly the live set.
  auto all = d.retrieve(pool);
  EXPECT_EQ(all.size(), ref.size());
  for (const auto& [k, v] : all) {
    ASSERT_TRUE(ref.count(k));
    EXPECT_EQ(ref[k], v);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PhaseDictParallel,
                         testing::Values(1u, 2u, 8u), [](const auto& info) {
                           return testing_util::name_cat("t", info.param);
                         });

TEST(PhaseDict, ParallelInsertStress) {
  ThreadPool pool(8);
  PhaseDict<uint32_t> d;
  std::vector<uint64_t> keys(100000);
  std::vector<uint32_t> vals(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i * 2654435761u;  // distinct
    vals[i] = static_cast<uint32_t>(i);
  }
  d.batch_insert(pool, keys, vals);
  EXPECT_EQ(d.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i += 997) {
    ASSERT_NE(d.find(keys[i]), nullptr);
    EXPECT_EQ(*d.find(keys[i]), vals[i]);
  }
}

}  // namespace
}  // namespace pdmm
