// Tests for the static parallel maximal matching (Theorem 2.2).
#include <gtest/gtest.h>

#include "core/checker.h"
#include "param_name.h"
#include "parallel/thread_pool.h"
#include "static_mm/luby.h"
#include "util/rng.h"

namespace pdmm {
namespace {

// Builds a random hypergraph; returns the registry with all edges inserted.
std::unique_ptr<HyperedgeRegistry> random_graph(Vertex n, size_t m,
                                                uint32_t r, uint64_t seed) {
  auto reg = std::make_unique<HyperedgeRegistry>(r);
  Xoshiro256 rng(seed);
  while (reg->num_edges() < m) {
    std::vector<Vertex> eps(r);
    for (auto& v : eps) v = static_cast<Vertex>(rng.below(n));
    std::sort(eps.begin(), eps.end());
    if (std::adjacent_find(eps.begin(), eps.end()) != eps.end()) continue;
    reg->insert(eps);
  }
  return reg;
}

void verify_mm(const HyperedgeRegistry& reg,
               const std::vector<EdgeId>& matched) {
  MatchingChecker::check_maximal_matching(reg, matched);
}

struct MMParams {
  Vertex n;
  size_t m;
  uint32_t r;
  uint64_t seed;
  unsigned threads;
};

class StaticMM : public testing::TestWithParam<MMParams> {};

TEST_P(StaticMM, ProducesMaximalMatching) {
  const auto p = GetParam();
  ThreadPool pool(p.threads);
  auto reg = random_graph(p.n, p.m, p.r, p.seed);
  const auto all = reg->all_edges();
  CostCounters cost;
  const StaticMMResult res =
      static_maximal_matching(pool, *reg, all, p.seed * 31, &cost);
  verify_mm(*reg, res.matched);
  EXPECT_GT(res.rounds, 0u);
  EXPECT_GT(cost.work, 0u);
  // Theorem 2.2: O(log M) rounds whp. Generous constant for the assert.
  EXPECT_LE(res.rounds, 10 + 4 * log2_ceil(p.m + 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticMM,
    testing::Values(MMParams{50, 100, 2, 1, 1}, MMParams{50, 100, 2, 2, 4},
                    MMParams{500, 2000, 2, 3, 1},
                    MMParams{500, 2000, 2, 4, 8},
                    MMParams{200, 1000, 3, 5, 2},
                    MMParams{300, 1500, 5, 6, 1},
                    MMParams{2000, 20000, 2, 7, 4},
                    MMParams{100, 50, 4, 8, 1},
                    MMParams{5000, 50000, 3, 9, 4}),
    [](const auto& info) {
      const auto& p = info.param;
      return testing_util::name_cat("n", p.n, "_m", p.m, "_r", p.r, "_s",
                                    p.seed, "_t", p.threads);
    });

TEST(StaticMMBasic, EmptyInput) {
  ThreadPool pool(1);
  HyperedgeRegistry reg(2);
  const auto res = static_maximal_matching(pool, reg, {}, 1);
  EXPECT_TRUE(res.matched.empty());
  EXPECT_EQ(res.rounds, 0u);
}

TEST(StaticMMBasic, SingleEdge) {
  ThreadPool pool(1);
  HyperedgeRegistry reg(2);
  const EdgeId e = reg.insert(std::vector<Vertex>{0, 1});
  const auto res =
      static_maximal_matching(pool, reg, std::vector<EdgeId>{e}, 1);
  ASSERT_EQ(res.matched.size(), 1u);
  EXPECT_EQ(res.matched[0], e);
}

TEST(StaticMMBasic, StarMatchesExactlyOne) {
  ThreadPool pool(2);
  HyperedgeRegistry reg(2);
  std::vector<EdgeId> ids;
  for (Vertex i = 1; i <= 100; ++i)
    ids.push_back(reg.insert(std::vector<Vertex>{0, i}));
  const auto res = static_maximal_matching(pool, reg, ids, 3);
  EXPECT_EQ(res.matched.size(), 1u);
}

TEST(StaticMMBasic, PerfectMatchingOnDisjointEdges) {
  ThreadPool pool(2);
  HyperedgeRegistry reg(2);
  std::vector<EdgeId> ids;
  for (Vertex i = 0; i < 1000; ++i)
    ids.push_back(
        reg.insert(std::vector<Vertex>{2 * i, 2 * i + 1}));
  const auto res = static_maximal_matching(pool, reg, ids, 4);
  EXPECT_EQ(res.matched.size(), 1000u);
  EXPECT_EQ(res.rounds, 1u) << "disjoint edges all win in round one";
}

TEST(StaticMMBasic, DeterministicPerSeed) {
  ThreadPool pool(1);
  auto reg = random_graph(100, 400, 2, 77);
  const auto all = reg->all_edges();
  const auto r1 = static_maximal_matching(pool, *reg, all, 5);
  ThreadPool pool8(8);
  const auto r2 = static_maximal_matching(pool8, *reg, all, 5);
  EXPECT_EQ(r1.matched, r2.matched) << "same seed => same matching";
  const auto r3 = static_maximal_matching(pool, *reg, all, 6);
  verify_mm(*reg, r3.matched);
}

TEST(StaticMMBasic, MatchesOnlyWithinCandidates) {
  // Non-candidate edges are invisible to the MM.
  ThreadPool pool(1);
  HyperedgeRegistry reg(2);
  const EdgeId a = reg.insert(std::vector<Vertex>{0, 1});
  reg.insert(std::vector<Vertex>{1, 2});  // not a candidate
  const auto res =
      static_maximal_matching(pool, reg, std::vector<EdgeId>{a}, 1);
  ASSERT_EQ(res.matched.size(), 1u);
  EXPECT_EQ(res.matched[0], a);
}

TEST(GreedyMM, AgreesOnValidity) {
  auto reg = random_graph(300, 1200, 3, 9);
  const auto all = reg->all_edges();
  const auto greedy = greedy_maximal_matching(*reg, all);
  verify_mm(*reg, greedy);
}

TEST(LubyVsGreedy, ComparableSizes) {
  // Maximal matchings can differ in size by at most a factor r against the
  // maximum; Luby and greedy should land in the same ballpark.
  ThreadPool pool(4);
  auto reg = random_graph(1000, 5000, 2, 10);
  const auto all = reg->all_edges();
  const auto luby = static_maximal_matching(pool, *reg, all, 11).matched;
  const auto greedy = greedy_maximal_matching(*reg, all);
  EXPECT_GT(luby.size(), greedy.size() / 3);
  EXPECT_GT(greedy.size(), luby.size() / 3);
}

}  // namespace
}  // namespace pdmm
